(** Algorithm 5.1 — the conventional incremental view-maintenance
    algorithm of [BLT86], transplanted unchanged into the warehousing
    environment.

    On update [U] it sends [V⟨U⟩]; on answer [A] it immediately applies
    [MV ← MV + A]. Correct in a centralized system, but in the decoupled
    setting its queries are evaluated against {e later} source states, so
    it is neither convergent nor weakly consistent — it reproduces the
    anomalies of Examples 2 and 3. Kept as the baseline the paper's
    examples are built on, and as the negative control for the
    consistency test-suite. *)

module R := Relational

type t

val create : Algorithm.Config.t -> t
val mv : t -> R.Bag.t
val quiescent : t -> bool
val on_update : t -> R.Update.t -> Algorithm.outcome
val on_answer : t -> id:int -> R.Bag.t -> Algorithm.outcome

val instance : Algorithm.creator
