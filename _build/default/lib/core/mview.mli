(** Materialized-view state operations shared by the algorithms.

    A materialized view is a non-negative {!Relational.Bag.t} (duplicates
    retained, as the paper requires for incremental deletions). *)

module R := Relational

exception Mview_error of string

val apply_delta : R.Bag.t -> R.Bag.t -> R.Bag.t
(** [MV + Δ] — signed addition; deletions arrive as negative counts. *)

val covers_key : R.View.t -> string -> bool
(** Whether the view projects every declared key attribute of [rel] — the
    per-relation condition under which deletions on [rel] are autonomously
    computable (used by ECAL; ECAK requires it for every relation). *)

val key_delete : view:R.View.t -> rel:string -> R.Tuple.t -> R.Bag.t -> R.Bag.t
(** The ECAK [key-delete] operation (Section 5.4): drop every view tuple
    whose projected key of [rel] equals the deleted tuple's key. Sound
    whenever [covers_key view rel]: the key identifies the deleted base
    tuple uniquely, so exactly its derivations are removed.
    @raise Mview_error if the view does not project [rel]'s declared key. *)

val add_dedup : R.Bag.t -> R.Bag.t -> R.Bag.t
(** ECAK's answer accumulation: add each positively signed answer tuple
    unless already present (duplicates witness anomalies and are dropped). *)

val check_no_negative : context:string -> R.Bag.t -> unit
(** @raise Mview_error when a view state carries negative counts — an
    over-deletion anomaly that correct algorithms never produce. *)
