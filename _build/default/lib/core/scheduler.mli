(** Interleaving control for the simulation.

    The anomaly phenomenon — and the best/worst cases of the performance
    study — are entirely determined by how source updates interleave with
    query answering. The scheduler picks the next atomic event among the
    currently enabled ones:

    - [Apply_update]: the source executes the next workload update and
      sends the notification (an [S_up] event);
    - [Source_receive]: the source takes the next query off its channel
      and answers it (an [S_qu] event);
    - [Warehouse_receive]: the warehouse processes the next incoming
      message (a [W_up] or [W_ans] event).

    FIFO channel order is preserved regardless of the policy, matching the
    paper's delivery assumptions. *)

type action =
  | Apply_update
  | Source_receive
  | Warehouse_receive

type enabled = {
  can_update : bool;
  can_source : bool;
  can_warehouse : bool;
}

exception Schedule_error of string

type policy =
  | Best_case
      (** drain all messages between updates: queries never overlap
          updates; ECA behaves exactly like Algorithm 5.1 *)
  | Worst_case
      (** all updates enter the system before any query is answered:
          every query compensates every preceding update *)
  | Round_robin  (** rotate among the enabled actions *)
  | Random of int  (** uniform among enabled actions, seeded *)
  | Explicit of action list
      (** play exactly this action sequence (used by the paper-example
          tests); raises {!Schedule_error} on a disabled action, and
          falls back to [Best_case] when exhausted *)

type t

val create : policy -> t

val pick : t -> enabled -> action option
(** The next action, or [None] when nothing is enabled. *)

val action_name : action -> string
val enabled_list : enabled -> action list
