(** A warehouse over {e several} autonomous sources — the first adaptation
    discussed in Section 7: when every materialized view ranges over the
    relations of a single source, "ECA is simply applied to each view
    separately", and that is exactly what this module demonstrates.

    Each source owns a disjoint set of relations, executes its own update
    stream, and is reached over its own pair of FIFO channels. Views are
    bound at creation time to the unique source owning all their
    relations; views spanning several sources are rejected — coordinating
    fragmented queries and their compensations across sources is the open
    problem the paper defers (it became the Strobe family of algorithms),
    and we keep the same boundary — unless the caller opts into the
    naive {!Cross_source} fetch-join strategy with
    [~allow_cross_source:true], whose whole purpose is to demonstrate the
    anomalies that make the problem hard (cross-source views are judged
    against the merged global state).

    Consistency is judged per view against its owning source's state
    sequence; interleavings across sources are controlled by the policy. *)

module R := Relational

exception Federation_error of string

type policy =
  | Drain_first
      (** deliver and answer everything in flight before the next update *)
  | Updates_first
      (** push every update into the system before answering queries —
          maximal cross-update contention at every site *)
  | Random of int  (** uniform among enabled events, seeded *)

type result = {
  reports : (string * Consistency.report) list;
  final_mvs : (string * R.Bag.t) list;
  final_source_views : (string * R.Bag.t) list;
  metrics : Metrics.t;
}

val run :
  ?policy:policy ->
  ?allow_cross_source:bool ->
  ?max_steps:int ->
  creator:Algorithm.creator ->
  sources:(string * Storage.Catalog.t option * R.Db.t) list ->
  views:R.View.t list ->
  updates:R.Update.t list ->
  unit ->
  result
(** [run ~creator ~sources ~views ~updates ()] replays the update stream,
    routing each update to the source owning its relation, and returns
    per-view consistency verdicts.
    @raise Federation_error when a relation is owned by two sources, a
    view spans several sources, or an update targets an unowned
    relation. *)
