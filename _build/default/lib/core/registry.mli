(** Registry of the view-maintenance algorithms, keyed by the names the
    CLI, the benches and the test harness use. *)

type entry = {
  key : string;
  description : string;
  creator : Algorithm.creator;
}

val entries : entry list
val names : string list
val find : string -> entry option

val creator_exn : string -> Algorithm.creator
(** @raise Invalid_argument for unknown names. *)
