(** The naive cross-source maintenance strategy — and why it fails.

    For a view spanning several sources, each update triggers full
    fetches of every other base relation (identity queries routed to
    their owners); the deltas are computed over the assembled snapshot.
    Because the fetches are answered at different times at different
    autonomous sites, the snapshot may correspond to {e no} global state
    that ever existed: under racing updates the algorithm violates even
    weak consistency, which is the concrete content of Section 7's
    warning that views over multiple sources "require some intricate
    algorithms" (historically, the Strobe family).

    Quiescent interleavings (every update drains before the next) keep it
    convergent — the same pattern as Algorithm 5.1 in the single-source
    setting. Registered as ["fetch-join"]; {!Federation.run} only hosts
    it behind [~allow_cross_source:true]. *)

module R := Relational

exception Not_applicable of string

type t

val create : Algorithm.Config.t -> t
val mv : t -> R.Bag.t
val quiescent : t -> bool
val on_update : t -> R.Update.t -> Algorithm.outcome
val on_answer : t -> id:int -> R.Bag.t -> Algorithm.outcome

val instance : Algorithm.creator
