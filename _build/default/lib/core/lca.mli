(** The Lazy Compensating Algorithm (sketched in Section 5.3): like ECA,
    but changes are applied to the view {e per update, in update order},
    which makes every source state visible at the warehouse —
    completeness, the strongest level of Section 3.1.

    Where ECA folds compensations into a single query and pools all
    answers in one [COLLECT], LCA keeps the pieces separate:

    - on update [U_i] it sends the base query [V⟨U_i⟩] tagged with [i],
      plus, for every piece [p] still pending, a compensation [−p⟨U_i⟩]
      tagged with {e p's own target} (the update whose delta [p] feeds);
    - a delta closes when no piece tagged with it remains unanswered — by
      FIFO delivery, later updates can only add compensations to a delta
      while one of its pieces is pending, so closure is stable;
    - closed deltas install strictly in update order; an answer that
      unblocks several buffered deltas installs them as successive view
      states within one atomic event.

    LCA trades messages for completeness (each compensation is a separate
    round-trip); the paper expects ECA to be preferable in practice, and
    the benches quantify that gap. *)

module R := Relational

type t

val create : Algorithm.Config.t -> t
val mv : t -> R.Bag.t
val quiescent : t -> bool
val on_update : t -> R.Update.t -> Algorithm.outcome

val on_batch : t -> R.Update.t list -> Algorithm.outcome
(** One delta slot for the whole batch; in-batch queries are merged per
    target delta, so completeness is with respect to the observable
    batch-boundary source states. *)

val on_answer : t -> id:int -> R.Bag.t -> Algorithm.outcome

val instance : Algorithm.creator
