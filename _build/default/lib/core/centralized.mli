(** The conventional centralized incremental view-maintenance algorithm
    of [BLT86] (the paper's Section 5.1 starting point), in isolation:
    full control over base data and view, no decoupling, no anomalies.

    This is what the warehouse {e cannot} run (it has no base data) and
    what SC recovers by replicating the base relations. It also serves as
    the test oracle: maintained views must equal recomputed views after
    every update. *)

module R := Relational

val step : R.Viewdef.t -> R.Db.t -> R.Update.t -> R.Db.t * R.Bag.t
(** [step view db u] applies [u] and returns the new state with the view
    delta [V[db+u] − V[db]] (empty when [u]'s relation is outside the
    view). *)

val maintain :
  R.Viewdef.t -> R.Db.t -> R.Bag.t -> R.Update.t -> R.Db.t * R.Bag.t
(** One maintenance step: new state and new view contents. *)

val maintain_all :
  R.Viewdef.t -> R.Db.t -> R.Bag.t -> R.Update.t list -> R.Db.t * R.Bag.t
