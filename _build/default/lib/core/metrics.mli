(** Run-level counters for the three cost factors of Section 6: messages
    (M), data transferred (B) and source I/O (IO). *)

type t = {
  updates : int;  (** source updates executed *)
  queries_sent : int;  (** query messages, warehouse → source *)
  answers_received : int;  (** answer messages, source → warehouse *)
  answer_tuples : int;
      (** signed tuple copies across all answers, counted per term before
          cross-term cancellation — the unit the paper prices at S bytes *)
  answer_bytes : int;  (** actual value bytes of the answers *)
  query_bytes : int;  (** wire size of query messages *)
  source_io : int;  (** I/Os charged by the source's planner *)
  steps : int;  (** simulation events executed *)
}

val zero : t

val messages : t -> int
(** The paper's M: queries + answers (notifications excluded, as in
    Section 6.1). *)

val transfer_tuples : t -> int

val bytes_for : s:int -> t -> int
(** The paper's B for a given per-tuple size [S]. *)

val pp : Format.formatter -> t -> unit
