lib/workload/generator.ml: Array Float List Random Relational Spec String
