lib/workload/scenarios.mli: Relational Spec Storage
