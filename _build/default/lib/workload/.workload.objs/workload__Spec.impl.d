lib/workload/spec.ml: Format
