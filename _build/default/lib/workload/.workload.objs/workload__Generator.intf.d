lib/workload/generator.mli: Random Relational Spec
