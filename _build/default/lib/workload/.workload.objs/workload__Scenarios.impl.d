lib/workload/scenarios.ml: Generator Relational Storage
