type t = {
  c : int;
  j : int;
  k_updates : int;
  insert_ratio : float;
  seed : int;
  value_range : int;
  skew : float;
}

let default =
  {
    c = 100;
    j = 4;
    k_updates = 3;
    insert_ratio = 1.0;
    seed = 42;
    value_range = 1000;
    skew = 0.0;
  }

let make ?(c = default.c) ?(j = default.j) ?(k_updates = default.k_updates)
    ?(insert_ratio = default.insert_ratio) ?(seed = default.seed)
    ?(value_range = default.value_range) ?(skew = default.skew) () =
  if c < 0 then invalid_arg "Spec.make: c must be non-negative";
  if j < 1 then invalid_arg "Spec.make: j must be at least 1";
  if k_updates < 0 then invalid_arg "Spec.make: k_updates must be non-negative";
  if insert_ratio < 0.0 || insert_ratio > 1.0 then
    invalid_arg "Spec.make: insert_ratio must lie in [0, 1]";
  if value_range < 2 then invalid_arg "Spec.make: value_range must be >= 2";
  if skew < 0.0 then invalid_arg "Spec.make: skew must be non-negative";
  { c; j; k_updates; insert_ratio; seed; value_range; skew }

(* Domain size for the join attributes: J matches per value needs roughly
   C / J distinct values. *)
let join_domain t = max 1 (t.c / t.j)

let pp ppf t =
  Format.fprintf ppf "C=%d J=%d k=%d ins=%.2f seed=%d skew=%.2f" t.c t.j
    t.k_updates t.insert_ratio t.seed t.skew
