(** Workload specifications for the Example-6 evaluation scenario:
    base-relation cardinality C, target join factor J, number of updates
    k, insert/delete mix, and a seed for reproducibility. *)

type t = private {
  c : int;  (** initial cardinality of each base relation *)
  j : int;  (** target join factor *)
  k_updates : int;  (** length of the update stream *)
  insert_ratio : float;  (** fraction of inserts (1.0 = inserts only) *)
  seed : int;
  value_range : int;  (** range of the non-join attributes W and Z *)
  skew : float;
      (** Zipf exponent for the join-attribute distribution: 0 = uniform
          (the paper's constant-J assumption); larger values concentrate
          matches on few hot values, raising the variance of J *)
}

val default : t
(** C = 100, J = 4, k = 3, inserts only, seed 42 — the paper's base
    setting. *)

val make :
  ?c:int ->
  ?j:int ->
  ?k_updates:int ->
  ?insert_ratio:float ->
  ?seed:int ->
  ?value_range:int ->
  ?skew:float ->
  unit ->
  t

val join_domain : t -> int
(** Number of distinct join-attribute values needed for join factor J
    ([max 1 (C / J)]). *)

val pp : Format.formatter -> t -> unit
