(* Hash-indexed signed bags.

   The bag is a persistent map from tuple *hash* to a small collision
   bucket of [(tuple, count)] entries. Dispatching on the precomputed
   integer hash means every lookup/update walks the tree comparing single
   ints and only runs full [Tuple.equal] inside a (nearly always
   single-entry) bucket — O(1) expected tuple comparisons per operation,
   against the former [Map.Make (Tuple)] tree that paid a full-tuple
   comparison at every node.

   Iteration order of [fold]/[iter] follows hash order and is therefore
   arbitrary (but deterministic for a given bag). Everything user-facing —
   [pp], [to_list], [to_counted_list], [compare] — sorts by [Tuple.compare]
   first, so printed output, golden files and cross-bag comparisons keep
   the canonical tuple order of the old tree representation. *)

module Imap = Map.Make (Int)

type t = {
  size : int;  (* number of distinct tuples, i.e. total bucket entries *)
  buckets : (Tuple.t * int) list Imap.t;
}

let empty = { size = 0; buckets = Imap.empty }

let is_empty b = b.size = 0

let distinct_cardinality b = b.size

let count b t =
  match Imap.find_opt (Tuple.hash t) b.buckets with
  | None -> 0
  | Some bucket -> (
    match List.find_opt (fun (t', _) -> Tuple.equal t t') bucket with
    | Some (_, n) -> n
    | None -> 0)

let add ?(count = 1) t b =
  if count = 0 then b
  else
    let h = Tuple.hash t in
    let bucket = Option.value (Imap.find_opt h b.buckets) ~default:[] in
    let rec split acc = function
      | [] -> None
      | ((t', n) :: rest : (Tuple.t * int) list) ->
        if Tuple.equal t t' then Some (acc, n, rest) else split ((t', n) :: acc) rest
    in
    match split [] bucket with
    | None ->
      { size = b.size + 1; buckets = Imap.add h ((t, count) :: bucket) b.buckets }
    | Some (before, n, after) ->
      let n' = n + count in
      if n' = 0 then
        let bucket' = List.rev_append before after in
        if bucket' = [] then
          { size = b.size - 1; buckets = Imap.remove h b.buckets }
        else { size = b.size - 1; buckets = Imap.add h bucket' b.buckets }
      else
        {
          size = b.size;
          buckets = Imap.add h ((t, n') :: List.rev_append before after) b.buckets;
        }

let remove ?(count = 1) t b = add ~count:(-count) t b

let singleton ?count t = add ?count t empty

let of_list ts = List.fold_left (fun b t -> add t b) empty ts

let of_signed_list sts =
  List.fold_left (fun b (s, t) -> add ~count:(Sign.to_int s) t b) empty sts

let fold f b acc =
  Imap.fold
    (fun _ bucket acc ->
      List.fold_left (fun acc (t, n) -> f t n acc) acc bucket)
    b.buckets acc

let iter f b =
  Imap.iter (fun _ bucket -> List.iter (fun (t, n) -> f t n) bucket) b.buckets

(* Fold the smaller operand into the larger: counts add commutatively, so
   the result is the same bag either way. *)
let plus a b =
  let small, large = if a.size <= b.size then a, b else b, a in
  fold (fun t n acc -> add ~count:n t acc) small large

(* Rebuild with a per-entry count transform ([f] returning None drops the
   entry); used by all the mapping/filtering operations below. *)
let filter_map_counts f b =
  let size = ref 0 in
  let buckets =
    Imap.filter_map
      (fun _ bucket ->
        match
          List.filter_map
            (fun (t, n) ->
              match f t n with
              | Some 0 | None -> None
              | Some n' ->
                incr size;
                Some (t, n'))
            bucket
        with
        | [] -> None
        | bucket' -> Some bucket')
      b.buckets
  in
  { size = !size; buckets }

let negate b = filter_map_counts (fun _ n -> Some (-n)) b

let minus a b = plus a (negate b)

let scale k b = if k = 0 then empty else filter_map_counts (fun _ n -> Some (n * k)) b

let apply_sign s b =
  match s with
  | Sign.Pos -> b
  | Sign.Neg -> negate b

let pos_part b = filter_map_counts (fun _ n -> if n > 0 then Some n else None) b

let neg_part b = filter_map_counts (fun _ n -> if n < 0 then Some (-n) else None) b

let union a b = plus (pos_part a) (pos_part b)

(* Truncating bag difference on non-negative bags: copies below zero vanish.
   This is classic multiset difference, provided for comparison with the
   paper's (pos ∪ pos) − (neg ∪ neg) formulation; the signed [minus] above
   is the operator the algorithms use. *)
let diff_truncated a b =
  let pa = pos_part a in
  fold
    (fun t nb acc ->
      match count acc t with
      | 0 -> acc
      | na -> add ~count:(max 0 (na - nb) - na) t acc)
    (pos_part b) pa

let cardinality b = fold (fun _ n acc -> acc + abs n) b 0

let net_cardinality b = fold (fun _ n acc -> acc + n) b 0

let has_negative b =
  Imap.exists (fun _ bucket -> List.exists (fun (_, n) -> n < 0) bucket) b.buckets

let is_set b =
  Imap.for_all (fun _ bucket -> List.for_all (fun (_, n) -> n = 1) bucket) b.buckets

(* Buckets hold the same entries in arbitrary order when two bags were
   built along different paths, so bucket equality is multiset equality. *)
let bucket_equal b1 b2 =
  List.length b1 = List.length b2
  && List.for_all
       (fun (t, n) ->
         List.exists (fun (t', n') -> n = n' && Tuple.equal t t') b2)
       b1

let equal a b = a.size = b.size && Imap.equal bucket_equal a.buckets b.buckets

let to_counted_list b =
  fold (fun t n acc -> (t, n) :: acc) b []
  |> List.sort (fun (t1, _) (t2, _) -> Tuple.compare t1 t2)

(* Canonical order: lexicographic over the tuple-sorted entry sequence,
   exactly the order the old [Map.Make (Tuple)] representation compared in. *)
let compare a b =
  List.compare
    (fun (t1, n1) (t2, n2) ->
      match Tuple.compare t1 t2 with 0 -> Int.compare n1 n2 | c -> c)
    (to_counted_list a) (to_counted_list b)

let mem t b = count b t <> 0

let filter f b = filter_map_counts (fun t n -> if f t then Some n else None) b

let map_tuples f b = fold (fun t n acc -> add ~count:n (f t) acc) b empty

let to_list b =
  List.concat_map
    (fun (t, n) ->
      let s = Sign.of_int n in
      List.init (abs n) (fun _ -> (s, t)))
    (to_counted_list b)

let byte_size b = fold (fun t n acc -> acc + (abs n * Tuple.byte_size t)) b 0

let dedup_to_set b = filter_map_counts (fun _ n -> if n > 0 then Some 1 else None) b

let pp ppf b =
  let pp_entry ppf (t, n) =
    if n = 1 then Tuple.pp ppf t
    else if n = -1 then Format.fprintf ppf "-%a" Tuple.pp t
    else Format.fprintf ppf "%+d*%a" n Tuple.pp t
  in
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_entry)
    (to_counted_list b)

let to_string b = Format.asprintf "%a" pp b
