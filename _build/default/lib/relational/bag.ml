module Tmap = Map.Make (Tuple)

type t = int Tmap.t

let empty = Tmap.empty

let is_empty b = Tmap.is_empty b

let count b t = match Tmap.find_opt t b with Some n -> n | None -> 0

let add ?(count = 1) t b =
  if count = 0 then b
  else
    Tmap.update t
      (fun prev ->
        let n = Option.value prev ~default:0 + count in
        if n = 0 then None else Some n)
      b

let remove ?(count = 1) t b = add ~count:(-count) t b

let singleton ?count t = add ?count t empty

let of_list ts = List.fold_left (fun b t -> add t b) empty ts

let of_signed_list sts =
  List.fold_left
    (fun b (s, t) -> add ~count:(Sign.to_int s) t b)
    empty sts

let plus a b = Tmap.fold (fun t n acc -> add ~count:n t acc) b a

let negate b = Tmap.map (fun n -> -n) b

let minus a b = plus a (negate b)

let scale k b = if k = 0 then empty else Tmap.map (fun n -> n * k) b

let apply_sign s b =
  match s with
  | Sign.Pos -> b
  | Sign.Neg -> negate b

let pos_part b = Tmap.filter (fun _ n -> n > 0) b

let neg_part b = Tmap.filter_map (fun _ n -> if n < 0 then Some (-n) else None) b

(* Plain (unsigned) bag union: only meaningful on non-negative bags. *)
let union a b = plus (pos_part a) (pos_part b)

(* Truncating bag difference on non-negative bags: copies below zero vanish.
   This is classic multiset difference, provided for comparison with the
   paper's (pos ∪ pos) − (neg ∪ neg) formulation; the signed [minus] above
   is the operator the algorithms use. *)
let diff_truncated a b =
  Tmap.merge
    (fun _ na nb ->
      let n = Option.value na ~default:0 - Option.value nb ~default:0 in
      if n > 0 then Some n else None)
    (pos_part a) (pos_part b)

let cardinality b = Tmap.fold (fun _ n acc -> acc + abs n) b 0

let net_cardinality b = Tmap.fold (fun _ n acc -> acc + n) b 0

let distinct_cardinality b = Tmap.cardinal b

let has_negative b = Tmap.exists (fun _ n -> n < 0) b

let is_set b = Tmap.for_all (fun _ n -> n = 1) b

let equal a b = Tmap.equal Int.equal a b

let compare a b = Tmap.compare Int.compare a b

let mem t b = count b t <> 0

let fold f b acc = Tmap.fold f b acc

let iter f b = Tmap.iter f b

let filter f b = Tmap.filter (fun t _ -> f t) b

let map_tuples f b =
  Tmap.fold (fun t n acc -> add ~count:n (f t) acc) b empty

let to_list b =
  Tmap.fold
    (fun t n acc ->
      let s = Sign.of_int n in
      let rec push k acc = if k = 0 then acc else push (k - 1) ((s, t) :: acc) in
      push (abs n) acc)
    b []
  |> List.rev

let to_counted_list b = Tmap.bindings b

let byte_size b =
  Tmap.fold (fun t n acc -> acc + (abs n * Tuple.byte_size t)) b 0

let dedup_to_set b = Tmap.filter_map (fun _ n -> if n > 0 then Some 1 else None) b

let pp ppf b =
  let pp_entry ppf (t, n) =
    if n = 1 then Tuple.pp ppf t
    else if n = -1 then Format.fprintf ppf "-%a" Tuple.pp t
    else Format.fprintf ppf "%+d*%a" n Tuple.pp t
  in
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_entry)
    (Tmap.bindings b)

let to_string b = Format.asprintf "%a" pp b
