lib/relational/update.mli: Format Sign Tuple
