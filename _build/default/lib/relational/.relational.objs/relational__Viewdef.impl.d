lib/relational/viewdef.ml: Attr Bag Eval Format Int List Option Predicate Query Sign String View
