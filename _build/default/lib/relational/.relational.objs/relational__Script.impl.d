lib/relational/script.ml: Db Format List Schema String Update Viewdef
