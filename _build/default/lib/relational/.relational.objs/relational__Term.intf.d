lib/relational/term.mli: Attr Format Predicate Schema Sign Tuple Update View
