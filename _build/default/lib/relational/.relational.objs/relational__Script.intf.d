lib/relational/script.mli: Db Format Schema Update Viewdef
