lib/relational/eval.ml: Array Attr Bag Db Format Hashtbl List Option Predicate Query Schema Sign Term Tuple Value
