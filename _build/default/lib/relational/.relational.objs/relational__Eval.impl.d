lib/relational/eval.ml: Array Bag Db Format Hashtbl List Plan Predicate Query Schema Sign Term Tuple Value
