lib/relational/plan.mli: Attr Predicate Term Value
