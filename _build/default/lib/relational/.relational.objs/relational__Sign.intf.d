lib/relational/sign.mli: Format
