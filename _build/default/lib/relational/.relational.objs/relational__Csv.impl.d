lib/relational/csv.ml: Bag Buffer Format List Printf Schema String Tuple Value
