lib/relational/bag.ml: Format Int List Map Option Sign Tuple
