lib/relational/sign.ml: Format
