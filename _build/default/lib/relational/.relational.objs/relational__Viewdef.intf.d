lib/relational/viewdef.mli: Bag Db Format Query Sign Update View
