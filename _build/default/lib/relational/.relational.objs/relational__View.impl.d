lib/relational/view.ml: Attr Format List Option Predicate Schema String
