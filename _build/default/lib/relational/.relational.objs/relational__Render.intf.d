lib/relational/render.mli: Bag Schema View
