lib/relational/db.ml: Bag Format Hashtbl List Map Option Schema String Tuple Update Value
