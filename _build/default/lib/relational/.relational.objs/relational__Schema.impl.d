lib/relational/schema.ml: Format List Option String Tuple Value
