lib/relational/csv.mli: Bag Schema
