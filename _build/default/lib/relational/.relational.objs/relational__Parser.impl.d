lib/relational/parser.ml: Attr Buffer Format List Predicate Printf Schema Script Sign String Tuple Update Value View Viewdef
