lib/relational/bag.mli: Format Sign Tuple
