lib/relational/query.ml: Format List Option Sign String Term Update
