lib/relational/query.ml: Array Format Hashtbl List Sign String Term Update
