lib/relational/query.mli: Format Term Update View
