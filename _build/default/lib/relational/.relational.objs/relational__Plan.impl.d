lib/relational/plan.ml: Array Attr Format Hashtbl List Predicate Schema Term Value
