lib/relational/term.ml: Attr Format List Predicate Schema Sign String Tuple Update View
