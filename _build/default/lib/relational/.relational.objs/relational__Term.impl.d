lib/relational/term.ml: Attr Format Hashtbl List Predicate Schema Sign String Tuple Update View
