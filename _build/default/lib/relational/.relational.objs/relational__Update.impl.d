lib/relational/update.ml: Format Printf Sign String Tuple
