lib/relational/predicate.mli: Attr Format Value
