lib/relational/predicate.ml: Attr Format List Printf Value
