lib/relational/db.mli: Bag Format Schema Update
