lib/relational/view.mli: Attr Format Predicate Schema
