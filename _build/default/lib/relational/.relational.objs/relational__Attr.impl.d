lib/relational/attr.ml: Format Option String
