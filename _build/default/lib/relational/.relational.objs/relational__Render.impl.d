lib/relational/render.ml: Array Bag Buffer List Printf Schema String Tuple Value View
