lib/relational/eval.mli: Bag Db Query Term View
