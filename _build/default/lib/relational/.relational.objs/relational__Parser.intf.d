lib/relational/parser.mli: Predicate Schema Script Tuple View Viewdef
