(** Selection conditions for SPJ views: boolean combinations of comparisons
    between attribute references and constants.

    Equality conjuncts between attributes of different base relations are
    recognised by the evaluator as join conditions and executed with hash
    joins; everything else is applied as a residual filter. *)

type operand =
  | Col of Attr.t
  | Const of Value.t

type cmp =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

type t =
  | True
  | False
  | Cmp of cmp * operand * operand
  | And of t * t
  | Or of t * t
  | Not of t

val eq : operand -> operand -> t
val col : string -> operand
(** [col "r1.X"] — parses qualification from the string. *)

val const : Value.t -> operand
val int : int -> operand

val eq_attrs : string -> string -> t
(** [eq_attrs "r1.X" "r2.X"] — the ubiquitous equi-join conjunct. *)

val conj : t list -> t
(** Conjunction of a list ([True] when empty). *)

val conjuncts : t -> t list
(** Flattens nested [And]s; drops [True]. *)

val cmp_holds : cmp -> int -> bool
(** [cmp_holds c n] interprets comparator [c] against a [compare] result. *)

val attrs : t -> Attr.t list
(** All attribute references, with duplicates. *)

val eval : (Attr.t -> Value.t) -> t -> bool
(** [eval lookup p] evaluates [p] under an attribute environment.
    The lookup function must be total for attributes of [p]. *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
