(** View definitions beyond a single SPJ block: signed combinations of
    SPJ views — bag [UNION] and bag [EXCEPT] — the "more complex
    relational algebra expressions" extension of the paper's Section 7.

    Semantics are the signed-bag ones used throughout: a compound view's
    contents are [Σᵢ signᵢ · Vᵢ], and because the delta operator is linear
    ([V[D+U] − V[D] = Σᵢ signᵢ · Vᵢ⟨U⟩[D+U]]), every compensating
    algorithm generalizes unchanged — the maintenance query of a compound
    view is just a longer signed sum of terms. A difference view can hold
    net-negative counts when the minuend does not cover the subtrahend;
    the consistency machinery treats such states like any other bag.

    Key-based streamlining (ECAK, ECAL's local deletes) remains restricted
    to {e simple} views, where the projected key identifies derivations. *)

type t = private {
  name : string;
  parts : (Sign.t * View.t) list;  (** at least one; equal output arities *)
}

exception Viewdef_error of string

val make : name:string -> (Sign.t * View.t) list -> t
(** @raise Viewdef_error on empty parts or mixed output arities. *)

val simple : View.t -> t
(** A single positive SPJ block (the paper's core case). *)

val as_simple : t -> View.t option
val is_simple : t -> bool

val union : ?name:string -> t -> t -> t
(** Bag union (additive, per the paper's duplicate-retention semantics). *)

val diff : ?name:string -> t -> t -> t
(** Signed bag difference: [a + (−b)]. *)

val full_query : t -> Query.t
(** The whole definition as a query — what RV ships to recompute. *)

val delta : t -> Update.t -> Query.t
(** [V⟨U⟩] generalized: [Σᵢ signᵢ · Vᵢ⟨U⟩]. *)

val mentions : t -> string -> bool
val relation_names : t -> string list
val output_arity : t -> int
val output_attr_names : t -> string list

val eval : Db.t -> t -> Bag.t
(** [V[ss]] for compound views. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
