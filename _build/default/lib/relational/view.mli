(** Warehouse view definitions (Section 4):
    [V = π_proj (σ_cond (r1 × r2 × … × rn))].

    Any select-project-join expression can be brought into this form. The
    base relations must be distinct (as the paper assumes). Attribute
    references in [proj] and [cond] are resolved to fully qualified form at
    construction time; unqualified references that are ambiguous across the
    base relations are rejected. *)

type t = private {
  name : string;
  sources : Schema.t list;
  cond : Predicate.t;
  proj : Attr.t list;  (** fully qualified after construction *)
}

exception View_error of string

val make :
  ?name:string -> proj:Attr.t list -> cond:Predicate.t -> Schema.t list -> t
(** @raise View_error on duplicate relations, empty projection, or
    unresolvable/ambiguous attribute references. *)

val natural_join :
  ?name:string ->
  ?extra_cond:Predicate.t ->
  proj:Attr.t list ->
  Schema.t list ->
  t
(** [natural_join ~proj sources] equates every pair of same-named columns
    across distinct relations — the paper's [r1 ⋈ r2 ⋈ r3] — optionally
    conjoined with [extra_cond] (e.g. the Example-6 condition [W > Z]). *)

val relation_names : t -> string list
val source_schema : t -> string -> Schema.t option
val mentions : t -> string -> bool

val columns : t -> (string * string) list
(** All [(relation, column)] pairs of the underlying cross product, in slot
    order. *)

val proj_position : t -> Attr.t -> int option
(** Output position of a (qualified) attribute, if projected. *)

val key_coverage : t -> (string * int list) list option
(** [Some assoc] when the view projects a declared key of {e every} base
    relation — the ECAK eligibility condition — where [assoc] maps each
    relation to the output positions of its key attributes. *)

val covers_all_keys : t -> bool

val output_attr_names : t -> string list
(** Display names for the output columns (qualified only when needed). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
