type t = {
  name : string;
  sources : Schema.t list;
  cond : Predicate.t;
  proj : Attr.t list;
}

exception View_error of string

let error fmt = Format.kasprintf (fun s -> raise (View_error s)) fmt

(* All (relation, column) pairs of the cross product, in slot order. *)
let columns_of_sources sources =
  List.concat_map
    (fun (s : Schema.t) ->
      List.map (fun c -> (s.Schema.name, c)) (Schema.attr_names s))
    sources

let resolve_against columns (a : Attr.t) =
  let matching =
    List.filter (fun (rel, name) -> Attr.matches ~rel ~name a) columns
  in
  match matching with
  | [ (rel, name) ] -> Attr.qualified rel name
  | [] -> error "attribute %s not found among base relations" (Attr.to_string a)
  | _ -> error "attribute %s is ambiguous; qualify it" (Attr.to_string a)

let resolve_operand columns = function
  | Predicate.Col a -> Predicate.Col (resolve_against columns a)
  | Predicate.Const _ as o -> o

let rec resolve_pred columns = function
  | Predicate.True -> Predicate.True
  | Predicate.False -> Predicate.False
  | Predicate.Cmp (c, a, b) ->
    Predicate.Cmp (c, resolve_operand columns a, resolve_operand columns b)
  | Predicate.And (a, b) ->
    Predicate.And (resolve_pred columns a, resolve_pred columns b)
  | Predicate.Or (a, b) ->
    Predicate.Or (resolve_pred columns a, resolve_pred columns b)
  | Predicate.Not a -> Predicate.Not (resolve_pred columns a)

let make ?(name = "V") ~proj ~cond sources =
  if sources = [] then error "view %s must range over at least one relation" name;
  let rel_names = List.map (fun (s : Schema.t) -> s.Schema.name) sources in
  let sorted = List.sort_uniq String.compare rel_names in
  if List.length sorted <> List.length rel_names then
    error
      "view %s mentions a relation twice; the algorithms assume distinct \
       relations"
      name;
  if proj = [] then error "view %s must project at least one attribute" name;
  let columns = columns_of_sources sources in
  let proj = List.map (resolve_against columns) proj in
  let cond = resolve_pred columns cond in
  { name; sources; cond; proj }

(* Natural join: equate every pair of same-named columns across distinct
   relations, as in the paper's V = π(r1 ⋈ r2 ⋈ r3). *)
let natural_join_condition sources =
  let tagged =
    List.concat_map
      (fun (s : Schema.t) ->
        List.map (fun c -> (s.Schema.name, c)) (Schema.attr_names s))
      sources
  in
  let rec pairs acc = function
    | [] -> acc
    | (rel, col) :: rest ->
      let eqs =
        List.filter_map
          (fun (rel', col') ->
            if String.equal col col' && not (String.equal rel rel') then
              Some
                (Predicate.eq
                   (Predicate.Col (Attr.qualified rel col))
                   (Predicate.Col (Attr.qualified rel' col')))
            else None)
          rest
      in
      pairs (acc @ eqs) rest
  in
  Predicate.conj (pairs [] tagged)

let natural_join ?name ?(extra_cond = Predicate.True) ~proj sources =
  let cond =
    match extra_cond with
    | Predicate.True -> natural_join_condition sources
    | p -> Predicate.And (natural_join_condition sources, p)
  in
  make ?name ~proj ~cond sources

let relation_names v = List.map (fun (s : Schema.t) -> s.Schema.name) v.sources

let source_schema v rel =
  List.find_opt (fun (s : Schema.t) -> String.equal s.Schema.name rel) v.sources

let mentions v rel = Option.is_some (source_schema v rel)

let columns v = columns_of_sources v.sources

let proj_position v (a : Attr.t) =
  let rec loop i = function
    | [] -> None
    | p :: rest -> if Attr.equal p a then Some i else loop (i + 1) rest
  in
  loop 0 v.proj

(* Key coverage (Section 5.4): the view must project every declared key
   attribute of every base relation. Returns, per relation, the positions
   in the view's output where that relation's key attributes appear. *)
let key_coverage v =
  let cover (s : Schema.t) =
    if s.Schema.key = [] then None
    else
      let positions =
        List.map
          (fun k -> proj_position v (Attr.qualified s.Schema.name k))
          s.Schema.key
      in
      if List.for_all Option.is_some positions then
        Some (s.Schema.name, List.map Option.get positions)
      else None
  in
  let covers = List.map cover v.sources in
  if List.for_all Option.is_some covers then
    Some (List.map Option.get covers)
  else None

let covers_all_keys v = Option.is_some (key_coverage v)

let output_attr_names v =
  (* Unqualified when unique among the projected names, qualified otherwise. *)
  let names = List.map (fun (a : Attr.t) -> a.Attr.name) v.proj in
  List.map
    (fun (a : Attr.t) ->
      let n = a.Attr.name in
      if List.length (List.filter (String.equal n) names) > 1 then
        Attr.to_string a
      else n)
    v.proj

let equal a b =
  String.equal a.name b.name
  && List.equal Schema.equal a.sources b.sources
  && Predicate.equal a.cond b.cond
  && List.equal Attr.equal a.proj b.proj

let pp ppf v =
  Format.fprintf ppf "VIEW %s AS SELECT %s FROM %s WHERE %a" v.name
    (String.concat ", " (List.map Attr.to_string v.proj))
    (String.concat ", " (relation_names v))
    Predicate.pp v.cond

let to_string v = Format.asprintf "%a" pp v
