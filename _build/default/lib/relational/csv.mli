(** CSV loading and dumping for base relations, typed by the relation's
    schema — how the CLI feeds realistic data into the simulated source.

    Minimal but correct dialect: comma-separated records, double-quoted
    fields for values containing commas, quotes or newlines, [""] as the
    escaped quote. Duplicate rows load as duplicate tuples (bags!). *)

exception Csv_error of string

val parse : ?header:bool -> Schema.t -> string -> Bag.t
(** [parse schema text] parses one tuple per non-empty line, typed by the
    schema's columns; [~header:true] skips the first line.
    @raise Csv_error on arity or type mismatches. *)

val to_string : ?header:bool -> Schema.t -> Bag.t -> string
(** Serializes a non-negative bag, one line per tuple copy.
    @raise Csv_error on negative counts. *)

val split_record : string -> string list
(** Exposed for tests: split one CSV record into raw fields. *)
