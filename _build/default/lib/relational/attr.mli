(** Attribute references, optionally qualified by a relation name
    ([r1.X] or just [X]).

    View definitions and predicates reference attributes; unqualified
    references are resolved against the view's base relations when the view
    is validated, and are an error when ambiguous. *)

type t = private {
  rel : string option;
  name : string;
}

val make : ?rel:string -> string -> t
val qualified : string -> string -> t
val unqualified : string -> t

val compare : t -> t -> int
val equal : t -> t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val of_string : string -> t
(** [of_string "r1.X"] is [qualified "r1" "X"]; [of_string "X"] is
    [unqualified "X"]. *)

val matches : rel:string -> name:string -> t -> bool
(** [matches ~rel ~name a] holds when [a] can denote column [name] of
    relation [rel] (qualified match, or unqualified name match). *)
