(** Tuple signs (Section 4.1 of the paper).

    Existing and inserted tuples carry [Pos]; deleted tuples carry [Neg].
    Signs propagate through relational operators: selection and projection
    preserve the sign, and the sign of a product tuple is the product of the
    signs of its components. *)

type t =
  | Pos  (** an existing or inserted tuple *)
  | Neg  (** a deleted tuple *)

val mult : t -> t -> t
(** [mult a b] is the sign of a product tuple built from components signed
    [a] and [b] (the [t1 × t2] table of Section 4.1). *)

val negate : t -> t
(** [negate s] flips the sign; used to form compensating query terms. *)

val to_int : t -> int
(** [to_int s] is [+1] or [-1]; multiplying replication counts by it folds
    the sign into a ℤ-counted bag. *)

val of_int : int -> t
(** [of_int n] is [Pos] when [n >= 0] and [Neg] otherwise. *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
