(** Base-relation schemas: a relation name, ordered typed columns, and an
    optional declared key.

    Key declarations drive the ECA-Key algorithm (Section 5.4): a view is
    ECAK-eligible only when it projects a declared key of every base
    relation it ranges over. *)

type column = {
  col_name : string;
  col_type : Value.ty;
}

type t = private {
  name : string;
  columns : column list;
  key : string list;  (** declared key attributes; [[]] when unknown *)
}

exception Schema_error of string

val make : ?key:string list -> string -> column list -> t
(** [make ?key name columns] validates that column names are distinct and
    that every key attribute is a column.
    @raise Schema_error otherwise. *)

val of_names : ?key:string list -> string -> string list -> t
(** [of_names name cols] builds an all-[INT] schema; the paper's examples
    (r1(W,X), r2(X,Y), ...) are all integer relations. *)

val arity : t -> int
val attr_names : t -> string list
val column_index : t -> string -> int option
val has_column : t -> string -> bool

val key_positions : t -> int list
(** Column indexes of the declared key attributes, in declaration order. *)

val check_tuple : t -> Tuple.t -> unit
(** @raise Schema_error when the tuple arity does not match the schema. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
