type t = Value.t array

let of_list = Array.of_list
let to_list = Array.to_list
let arity = Array.length
let get = Array.get

let ints ns = Array.of_list (List.map (fun n -> Value.Int n) ns)

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec loop i =
      if i >= la then 0
      else
        match Value.compare a.(i) b.(i) with
        | 0 -> loop (i + 1)
        | c -> c
    in
    loop 0

let equal a b = compare a b = 0

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let byte_size t = Array.fold_left (fun acc v -> acc + Value.byte_size v) 0 t

let concat = Array.append

let project positions t = Array.map (fun i -> t.(i)) positions

let to_string t =
  "[" ^ String.concat "," (List.map Value.to_string (Array.to_list t)) ^ "]"

let pp ppf t = Format.pp_print_string ppf (to_string t)
