exception Csv_error of string

let error fmt = Format.kasprintf (fun s -> raise (Csv_error s)) fmt

(* Split one CSV record. Double quotes delimit fields that contain commas
   or quotes; "" inside a quoted field is an escaped quote. *)
let split_record line =
  let n = String.length line in
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let push () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let rec plain i =
    if i >= n then push ()
    else
      match line.[i] with
      | ',' ->
        push ();
        plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then error "unterminated quoted field in %S" line
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> after_quote (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  and after_quote i =
    if i >= n then push ()
    else
      match line.[i] with
      | ',' ->
        push ();
        plain (i + 1)
      | c -> error "unexpected %C after closing quote in %S" c line
  in
  plain 0;
  List.rev !fields

let parse_field (col : Schema.column) text =
  let fail () =
    error "cannot parse %S as %s for column %s" text
      (Value.ty_to_string col.Schema.col_type)
      col.Schema.col_name
  in
  match col.Schema.col_type with
  | Value.Tint -> (
    match int_of_string_opt (String.trim text) with
    | Some n -> Value.Int n
    | None -> fail ())
  | Value.Tfloat -> (
    match float_of_string_opt (String.trim text) with
    | Some f -> Value.Float f
    | None -> fail ())
  | Value.Tbool -> (
    match String.lowercase_ascii (String.trim text) with
    | "true" | "1" | "t" -> Value.Bool true
    | "false" | "0" | "f" -> Value.Bool false
    | _ -> fail ())
  | Value.Tstr -> Value.Str text

let lines_of text =
  String.split_on_char '\n' text
  |> List.map (fun l ->
         if String.length l > 0 && l.[String.length l - 1] = '\r' then
           String.sub l 0 (String.length l - 1)
         else l)
  |> List.filter (fun l -> String.trim l <> "")

let parse ?(header = false) schema text =
  let rows = lines_of text in
  let rows = if header && rows <> [] then List.tl rows else rows in
  List.fold_left
    (fun bag line ->
      let fields = split_record line in
      if List.length fields <> Schema.arity schema then
        error "row %S has %d fields but %s has arity %d" line
          (List.length fields) schema.Schema.name (Schema.arity schema);
      let tuple =
        Tuple.of_list (List.map2 parse_field schema.Schema.columns fields)
      in
      Bag.add tuple bag)
    Bag.empty rows

let escape_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let field_to_string = function
  | Value.Int n -> string_of_int n
  | Value.Float f -> Printf.sprintf "%g" f
  | Value.Bool b -> string_of_bool b
  | Value.Str s -> escape_field s

let to_string ?(header = false) schema bag =
  let buf = Buffer.create 256 in
  if header then begin
    Buffer.add_string buf (String.concat "," (Schema.attr_names schema));
    Buffer.add_char buf '\n'
  end;
  List.iter
    (fun (t, n) ->
      if n < 0 then
        error "cannot serialize a relation with negative counts";
      for _ = 1 to n do
        Buffer.add_string buf
          (String.concat ","
             (List.map field_to_string (Tuple.to_list t)));
        Buffer.add_char buf '\n'
      done)
    (Bag.to_counted_list bag);
  Buffer.contents buf
