(** Scalar values stored in relation columns.

    The paper works over untyped relational examples; we provide a small
    typed universe sufficient for realistic warehouse schemas. *)

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

(** Column types, used by schemas and the script parser. *)
type ty =
  | Tint
  | Tfloat
  | Tstr
  | Tbool

val type_of : t -> ty
val ty_to_string : ty -> string

val ty_of_string : string -> ty option
(** [ty_of_string s] parses SQL-ish type names ([INT], [FLOAT], [TEXT],
    [BOOL] and common synonyms), case-insensitively. *)

val compare : t -> t -> int
(** Total order: values of the same type compare naturally; values of
    different types compare by a fixed tag order (Int < Float < Str < Bool).
    Used for bag maps and deterministic printing. *)

val equal : t -> t -> bool

val compare_for_predicate : t -> t -> int
(** Like {!compare} but [Int]/[Float] pairs compare numerically, so
    predicates such as [W > 1.5] behave as expected on integer columns. *)

val byte_size : t -> int
(** Size in bytes charged by the transfer-cost model (ints 4, floats 8,
    bools 1, strings their length). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val hash : t -> int
