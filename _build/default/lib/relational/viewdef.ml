type t = {
  name : string;
  parts : (Sign.t * View.t) list;
}

exception Viewdef_error of string

let error fmt = Format.kasprintf (fun s -> raise (Viewdef_error s)) fmt

let output_arity t =
  match t.parts with
  | [] -> 0
  | (_, v) :: _ -> List.length v.View.proj

let make ~name parts =
  if parts = [] then error "compound view %s needs at least one part" name;
  let arities =
    List.sort_uniq Int.compare
      (List.map (fun (_, (v : View.t)) -> List.length v.View.proj) parts)
  in
  (match arities with
   | [ _ ] -> ()
   | _ -> error "compound view %s mixes output arities" name);
  { name; parts }

let simple (v : View.t) = { name = v.View.name; parts = [ (Sign.Pos, v) ] }

let as_simple t =
  match t.parts with
  | [ (Sign.Pos, v) ] -> Some v
  | _ -> None

let is_simple t = Option.is_some (as_simple t)

let scale sign parts =
  List.map (fun (s, v) -> (Sign.mult sign s, v)) parts

let union ?name a b =
  let name = Option.value name ~default:(a.name ^ "+" ^ b.name) in
  make ~name (a.parts @ b.parts)

let diff ?name a b =
  let name = Option.value name ~default:(a.name ^ "-" ^ b.name) in
  make ~name (a.parts @ scale Sign.Neg b.parts)

let signed_query sign v =
  let q = Query.of_view v in
  match sign with Sign.Pos -> q | Sign.Neg -> Query.negate q

let full_query t =
  List.concat_map (fun (sign, v) -> signed_query sign v) t.parts

let delta t u =
  List.concat_map
    (fun (sign, v) ->
      let q = Query.view_delta v u in
      match sign with Sign.Pos -> q | Sign.Neg -> Query.negate q)
    t.parts

let mentions t rel = List.exists (fun (_, v) -> View.mentions v rel) t.parts

let relation_names t =
  List.sort_uniq String.compare
    (List.concat_map (fun (_, v) -> View.relation_names v) t.parts)

let eval db t =
  List.fold_left
    (fun acc (sign, v) ->
      Bag.plus acc (Bag.apply_sign sign (Eval.view db v)))
    Bag.empty t.parts

let output_attr_names t =
  match t.parts with
  | [] -> []
  | (_, v) :: _ -> View.output_attr_names v

let equal a b =
  String.equal a.name b.name
  && List.equal
       (fun (s1, v1) (s2, v2) -> Sign.equal s1 s2 && View.equal v1 v2)
       a.parts b.parts

let pp ppf t =
  match as_simple t with
  | Some v -> View.pp ppf v
  | None ->
    Format.fprintf ppf "VIEW %s AS" t.name;
    List.iteri
      (fun i (sign, (v : View.t)) ->
        let connective =
          if i = 0 then
            match sign with Sign.Pos -> "" | Sign.Neg -> " MINUS"
          else match sign with Sign.Pos -> " UNION" | Sign.Neg -> " EXCEPT"
        in
        Format.fprintf ppf "%s SELECT %s FROM %s WHERE %a" connective
          (String.concat ", " (List.map Attr.to_string v.View.proj))
          (String.concat ", " (View.relation_names v))
          Predicate.pp v.View.cond)
      t.parts

let to_string t = Format.asprintf "%a" pp t
