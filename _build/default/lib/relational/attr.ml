type t = {
  rel : string option;
  name : string;
}

let make ?rel name = { rel; name }

let qualified rel name = { rel = Some rel; name }

let unqualified name = { rel = None; name }

let compare a b =
  match Option.compare String.compare a.rel b.rel with
  | 0 -> String.compare a.name b.name
  | c -> c

let equal a b = compare a b = 0

let to_string a =
  match a.rel with
  | None -> a.name
  | Some r -> r ^ "." ^ a.name

let pp ppf a = Format.pp_print_string ppf (to_string a)

let of_string s =
  match String.index_opt s '.' with
  | None -> unqualified s
  | Some i ->
    qualified (String.sub s 0 i) (String.sub s (i + 1) (String.length s - i - 1))

(* [matches ~rel ~name a] holds when attribute reference [a] denotes column
   [name] of relation [rel]: either it is fully qualified and both match, or
   it is unqualified and the column name matches. Ambiguity of unqualified
   references must be ruled out by the caller (see {!Resolve}). *)
let matches ~rel ~name a =
  String.equal a.name name
  && (match a.rel with None -> true | Some r -> String.equal r rel)
