(** Tuples: fixed-arity arrays of {!Value.t}.

    Tuples are the unit of update notification ([insert(r, t)] /
    [delete(r, t)]), of bag membership, and of query answers. *)

type t = Value.t array

val of_list : Value.t list -> t
val to_list : t -> Value.t list

val ints : int list -> t
(** [ints [1; 2]] is the tuple [[1,2]] — the paper's examples are all over
    integer relations, so this constructor keeps tests and examples terse. *)

val arity : t -> int
val get : t -> int -> Value.t

val compare : t -> t -> int
(** Lexicographic by {!Value.compare}; shorter tuples sort first. *)

val equal : t -> t -> bool
val hash : t -> int

val byte_size : t -> int
(** Total {!Value.byte_size} of the components; used by transfer costing. *)

val concat : t -> t -> t
val project : int array -> t -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
