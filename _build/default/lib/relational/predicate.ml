type operand =
  | Col of Attr.t
  | Const of Value.t

type cmp =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

type t =
  | True
  | False
  | Cmp of cmp * operand * operand
  | And of t * t
  | Or of t * t
  | Not of t

let eq a b = Cmp (Eq, a, b)
let col a = Col (Attr.of_string a)
let const v = Const v
let int n = Const (Value.Int n)

let eq_attrs a b = Cmp (Eq, Col (Attr.of_string a), Col (Attr.of_string b))

let conj = function
  | [] -> True
  | p :: ps -> List.fold_left (fun acc q -> And (acc, q)) p ps

let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | True -> []
  | p -> [ p ]

let cmp_holds c n =
  match c with
  | Eq -> n = 0
  | Neq -> n <> 0
  | Lt -> n < 0
  | Le -> n <= 0
  | Gt -> n > 0
  | Ge -> n >= 0

let rec attrs = function
  | True | False -> []
  | Cmp (_, a, b) ->
    let of_op = function Col a -> [ a ] | Const _ -> [] in
    of_op a @ of_op b
  | And (a, b) | Or (a, b) -> attrs a @ attrs b
  | Not p -> attrs p

let eval lookup p =
  let op_value = function
    | Col a -> lookup a
    | Const v -> v
  in
  let rec go = function
    | True -> true
    | False -> false
    | Cmp (c, a, b) ->
      cmp_holds c (Value.compare_for_predicate (op_value a) (op_value b))
    | And (a, b) -> go a && go b
    | Or (a, b) -> go a || go b
    | Not a -> not (go a)
  in
  go p

let cmp_to_string = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let operand_to_string = function
  | Col a -> Attr.to_string a
  | Const v -> Value.to_string v

let rec to_string = function
  | True -> "TRUE"
  | False -> "FALSE"
  | Cmp (c, a, b) ->
    Printf.sprintf "%s %s %s" (operand_to_string a) (cmp_to_string c)
      (operand_to_string b)
  | And (a, b) -> Printf.sprintf "(%s AND %s)" (to_string a) (to_string b)
  | Or (a, b) -> Printf.sprintf "(%s OR %s)" (to_string a) (to_string b)
  | Not a -> Printf.sprintf "(NOT %s)" (to_string a)

let pp ppf p = Format.pp_print_string ppf (to_string p)

let rec equal a b =
  match a, b with
  | True, True | False, False -> true
  | Cmp (c1, x1, y1), Cmp (c2, x2, y2) ->
    c1 = c2 && operand_equal x1 x2 && operand_equal y1 y2
  | And (a1, b1), And (a2, b2) | Or (a1, b1), Or (a2, b2) ->
    equal a1 a2 && equal b1 b2
  | Not a1, Not a2 -> equal a1 a2
  | (True | False | Cmp _ | And _ | Or _ | Not _), _ -> false

and operand_equal a b =
  match a, b with
  | Col x, Col y -> Attr.equal x y
  | Const x, Const y -> Value.equal x y
  | (Col _ | Const _), _ -> false
