type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type ty =
  | Tint
  | Tfloat
  | Tstr
  | Tbool

let type_of = function
  | Int _ -> Tint
  | Float _ -> Tfloat
  | Str _ -> Tstr
  | Bool _ -> Tbool

let ty_to_string = function
  | Tint -> "INT"
  | Tfloat -> "FLOAT"
  | Tstr -> "TEXT"
  | Tbool -> "BOOL"

let ty_of_string s =
  match String.uppercase_ascii s with
  | "INT" | "INTEGER" -> Some Tint
  | "FLOAT" | "REAL" | "DOUBLE" -> Some Tfloat
  | "TEXT" | "STRING" | "VARCHAR" -> Some Tstr
  | "BOOL" | "BOOLEAN" -> Some Tbool
  | _ -> None

let tag = function
  | Int _ -> 0
  | Float _ -> 1
  | Str _ -> 2
  | Bool _ -> 3

let compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | (Int _ | Float _ | Str _ | Bool _), _ -> Int.compare (tag a) (tag b)

let equal a b = compare a b = 0

(* Cross-type numeric comparison used by predicates: an Int and a Float
   compare by numeric value so that conditions like [W > 1.5] are usable on
   integer columns. Other mixed comparisons fall back to structural order. *)
let compare_for_predicate a b =
  match a, b with
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | _ -> compare a b

let byte_size = function
  | Int _ -> 4
  | Float _ -> 8
  | Str s -> String.length s
  | Bool _ -> 1

let to_string = function
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%g" f
  | Str s -> Printf.sprintf "%S" s
  | Bool b -> string_of_bool b

let pp ppf v = Format.pp_print_string ppf (to_string v)

let hash = function
  | Int n -> Hashtbl.hash (0, n)
  | Float f -> Hashtbl.hash (1, f)
  | Str s -> Hashtbl.hash (2, s)
  | Bool b -> Hashtbl.hash (3, b)
