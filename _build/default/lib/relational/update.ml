type kind =
  | Insert
  | Delete

type t = {
  seq : int;
  kind : kind;
  rel : string;
  tuple : Tuple.t;
}

let insert ?(seq = 0) rel tuple = { seq; kind = Insert; rel; tuple }
let delete ?(seq = 0) rel tuple = { seq; kind = Delete; rel; tuple }

let with_seq seq u = { u with seq }

let sign u =
  match u.kind with
  | Insert -> Sign.Pos
  | Delete -> Sign.Neg

let signed_tuple u = (sign u, u.tuple)

let byte_size u = 8 + String.length u.rel + Tuple.byte_size u.tuple

let equal a b =
  a.seq = b.seq && a.kind = b.kind && String.equal a.rel b.rel
  && Tuple.equal a.tuple b.tuple

let to_string u =
  Printf.sprintf "%s(%s, %s)"
    (match u.kind with Insert -> "insert" | Delete -> "delete")
    u.rel (Tuple.to_string u.tuple)

let pp ppf u = Format.pp_print_string ppf (to_string u)
