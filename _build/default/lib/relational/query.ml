type t = Term.t list

let empty = []

let is_empty q = q = []

let of_view v = [ Term.of_view v ]

let of_terms ts = ts

let terms q = q

let negate q = List.map Term.negate q

let plus a b = a @ b

let minus a b = a @ negate b

let subst q (u : Update.t) = List.filter_map (fun t -> Term.subst t u) q

let subst_all q us = List.fold_left subst q us

let view_delta v u = subst (of_view v) u

let split_local q =
  List.partition Term.is_all_literals q

(* Cancel T / -T pairs: compensations of compensations can re-introduce a
   term that an earlier compensation subtracted; since queries are signed
   sums, such pairs contribute nothing and need not be shipped or
   evaluated. *)
let simplify q =
  List.fold_left
    (fun acc t ->
      let opposite = Term.negate t in
      let rec remove_first = function
        | [] -> None
        | x :: rest ->
          if Term.equal x opposite then Some rest
          else Option.map (fun r -> x :: r) (remove_first rest)
      in
      match remove_first acc with
      | Some acc' -> acc'
      | None -> acc @ [ t ])
    [] q

let base_relations q =
  List.sort_uniq String.compare (List.concat_map Term.base_relations q)

let term_count = List.length

let byte_size q =
  List.fold_left (fun acc t -> acc + Term.byte_size t) 0 q

let equal a b = List.equal Term.equal a b

let pp ppf q =
  match q with
  | [] -> Format.pp_print_string ppf "(empty query)"
  | t :: rest ->
    Term.pp ppf t;
    List.iter
      (fun (tm : Term.t) ->
        match tm.Term.sign with
        | Sign.Pos -> Format.fprintf ppf "@ + %a" Term.pp { tm with Term.sign = Sign.Pos }
        | Sign.Neg -> Format.fprintf ppf "@ - %a" Term.pp { tm with Term.sign = Sign.Pos })
      rest

let to_string q = Format.asprintf "%a" pp q
