type column = {
  col_name : string;
  col_type : Value.ty;
}

type t = {
  name : string;
  columns : column list;
  key : string list;
}

exception Schema_error of string

let error fmt = Format.kasprintf (fun s -> raise (Schema_error s)) fmt

let make ?(key = []) name columns =
  if name = "" then error "relation name cannot be empty";
  if columns = [] then error "relation %s must have at least one column" name;
  let names = List.map (fun c -> c.col_name) columns in
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then
    error "relation %s has duplicate column names" name;
  List.iter
    (fun k ->
      if not (List.mem k names) then
        error "key attribute %s is not a column of %s" k name)
    key;
  { name; columns; key }

let of_names ?key name col_names =
  make ?key name
    (List.map (fun n -> { col_name = n; col_type = Value.Tint }) col_names)

let arity s = List.length s.columns

let attr_names s = List.map (fun c -> c.col_name) s.columns

let column_index s n =
  let rec loop i = function
    | [] -> None
    | c :: rest -> if String.equal c.col_name n then Some i else loop (i + 1) rest
  in
  loop 0 s.columns

let has_column s n = Option.is_some (column_index s n)

let key_positions s =
  List.map
    (fun k ->
      match column_index s k with
      | Some i -> i
      | None -> error "key attribute %s is not a column of %s" k s.name)
    s.key

let check_tuple s (t : Tuple.t) =
  if Tuple.arity t <> arity s then
    error "tuple %s has arity %d but relation %s has arity %d"
      (Tuple.to_string t) (Tuple.arity t) s.name (arity s)

let equal a b =
  String.equal a.name b.name
  && List.length a.columns = List.length b.columns
  && List.for_all2
       (fun x y -> String.equal x.col_name y.col_name && x.col_type = y.col_type)
       a.columns b.columns
  && List.equal String.equal a.key b.key

let pp ppf s =
  let pp_col ppf c =
    Format.fprintf ppf "%s %s%s" c.col_name
      (Value.ty_to_string c.col_type)
      (if List.mem c.col_name s.key then " KEY" else "")
  in
  Format.fprintf ppf "%s(%a)" s.name
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_col)
    s.columns

let to_string s = Format.asprintf "%a" pp s
