module Smap = Map.Make (String)

type t = {
  relations : (Schema.t * Bag.t) Smap.t;
}

exception Db_error of string

let error fmt = Format.kasprintf (fun s -> raise (Db_error s)) fmt

let empty = { relations = Smap.empty }

(* Declared keys are enforced: a base relation may not hold two tuples
   agreeing on all key attributes. ECAK's correctness depends on declared
   keys being real, so lying declarations are rejected at the door. *)
let key_violation schema bag tuple =
  match Schema.key_positions schema with
  | [] -> false
  | positions ->
    let key t = List.map (Tuple.get t) positions in
    let target = key tuple in
    Bag.fold
      (fun t n acc ->
        acc || (n > 0 && List.equal Value.equal (key t) target))
      bag false

let check_keys schema bag =
  match Schema.key_positions schema with
  | [] -> ()
  | positions ->
    (* Sorted walk so the offending tuple reported is deterministic. *)
    let seen = Hashtbl.create 16 in
    List.iter
      (fun (t, n) ->
        let key = List.map (Tuple.get t) positions in
        if n > 1 || Hashtbl.mem seen key then
          error "relation %s: tuple %s violates the declared key"
            schema.Schema.name (Tuple.to_string t);
        Hashtbl.replace seen key ())
      (Bag.to_counted_list bag)

let add_relation ?(contents = Bag.empty) db schema =
  if Smap.mem schema.Schema.name db.relations then
    error "relation %s already exists" schema.Schema.name;
  Bag.iter (fun t _ -> Schema.check_tuple schema t) contents;
  if Bag.has_negative contents then
    error "base relation %s cannot hold negative counts" schema.Schema.name;
  check_keys schema contents;
  { relations = Smap.add schema.Schema.name (schema, contents) db.relations }

let of_list l =
  List.fold_left
    (fun db (schema, contents) -> add_relation ~contents db schema)
    empty l

let schema db name =
  match Smap.find_opt name db.relations with
  | Some (s, _) -> s
  | None -> error "unknown relation %s" name

let schema_opt db name = Option.map fst (Smap.find_opt name db.relations)

let contents db name =
  match Smap.find_opt name db.relations with
  | Some (_, b) -> b
  | None -> error "unknown relation %s" name

let mem db name = Smap.mem name db.relations

let relation_names db = List.map fst (Smap.bindings db.relations)

let schemas db = List.map (fun (_, (s, _)) -> s) (Smap.bindings db.relations)

let set_contents db name bag =
  match Smap.find_opt name db.relations with
  | None -> error "unknown relation %s" name
  | Some (s, _) ->
    Bag.iter (fun t _ -> Schema.check_tuple s t) bag;
    { relations = Smap.add name (s, bag) db.relations }

let apply ?(strict = true) db (u : Update.t) =
  match Smap.find_opt u.rel db.relations with
  | None -> error "update %s targets unknown relation" (Update.to_string u)
  | Some (s, b) ->
    Schema.check_tuple s u.tuple;
    let b' =
      match u.kind with
      | Update.Insert ->
        if key_violation s b u.tuple then
          error "insert violates the declared key of %s: %s" u.rel
            (Update.to_string u)
        else Bag.add u.tuple b
      | Update.Delete ->
        if Bag.count b u.tuple <= 0 then
          if strict then
            error "delete of absent tuple: %s" (Update.to_string u)
          else b (* non-strict: deleting an absent tuple is a no-op *)
        else Bag.remove u.tuple b
    in
    { relations = Smap.add u.rel (s, b') db.relations }

let apply_all ?strict db us = List.fold_left (fun db u -> apply ?strict db u) db us

let total_tuples db =
  Smap.fold (fun _ (_, b) acc -> acc + Bag.net_cardinality b) db.relations 0

let equal a b =
  Smap.equal
    (fun (s1, b1) (s2, b2) -> Schema.equal s1 s2 && Bag.equal b1 b2)
    a.relations b.relations

let pp ppf db =
  Smap.iter
    (fun _ (s, b) -> Format.fprintf ppf "%a = %a@." Schema.pp s Bag.pp b)
    db.relations
