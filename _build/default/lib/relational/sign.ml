type t =
  | Pos
  | Neg

let mult a b =
  match a, b with
  | Pos, Pos | Neg, Neg -> Pos
  | Pos, Neg | Neg, Pos -> Neg

let negate = function
  | Pos -> Neg
  | Neg -> Pos

let to_int = function
  | Pos -> 1
  | Neg -> -1

let of_int n = if n >= 0 then Pos else Neg

let equal a b =
  match a, b with
  | Pos, Pos | Neg, Neg -> true
  | Pos, Neg | Neg, Pos -> false

let to_string = function
  | Pos -> "+"
  | Neg -> "-"

let pp ppf s = Format.pp_print_string ppf (to_string s)
