(** ASCII table rendering of relations, for CLI and example output.

    The trailing [#] column shows the replication count when it differs
    from 1 (bags!) — negative counts render as e.g. [x-1], making
    over-deletion anomalies visible at a glance. *)

val table : columns:string list -> Bag.t -> string
val view_table : View.t -> Bag.t -> string
val relation_table : Schema.t -> Bag.t -> string
