exception Eval_error of string

let error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

(* Column layout of a term: the concatenation of its slots' columns, each
   tagged with its relation. Slot [i] occupies positions
   [offsets.(i) .. offsets.(i) + arity_i - 1]. *)
type layout = {
  cols : (string * string) array;  (* (relation, column) per position *)
  offsets : int array;             (* first position of each slot *)
}

let layout_of_slots slots =
  let cols = ref [] and offsets = ref [] and off = ref 0 in
  List.iter
    (fun slot ->
      let s = Term.slot_schema slot in
      offsets := !off :: !offsets;
      List.iter
        (fun c ->
          cols := (s.Schema.name, c) :: !cols;
          incr off)
        (Schema.attr_names s))
    slots;
  { cols = Array.of_list (List.rev !cols); offsets = Array.of_list (List.rev !offsets) }

let resolve layout (a : Attr.t) =
  let hits = ref [] in
  Array.iteri
    (fun i (rel, name) -> if Attr.matches ~rel ~name a then hits := i :: !hits)
    layout.cols;
  match !hits with
  | [ i ] -> i
  | [] -> error "unresolved attribute %s" (Attr.to_string a)
  | _ -> error "ambiguous attribute %s" (Attr.to_string a)

(* Highest column position referenced by a predicate; -1 when it has no
   attribute references (constant-only conjuncts). *)
let max_position layout p =
  List.fold_left
    (fun acc a -> max acc (resolve layout a))
    (-1) (Predicate.attrs p)

let slot_of_position layout pos =
  let n = Array.length layout.offsets in
  let rec loop i = if i + 1 < n && layout.offsets.(i + 1) <= pos then loop (i + 1) else i in
  loop 0

(* A conjunct [colA = colB] whose two sides land in different slots and
   whose later slot is [slot] becomes a hash-join key for that slot. *)
type join_key = {
  probe_pos : int;  (* position among already-joined columns *)
  build_pos : int;  (* position within the new slot's own columns *)
}

let classify_conjuncts layout slots cond =
  let nslots = List.length slots in
  let joins = Array.make nslots [] in      (* per-slot hash-join keys *)
  let filters = Array.make nslots [] in    (* per-slot residual conjuncts *)
  let pre = ref [] in                      (* constant-only conjuncts *)
  let assign p =
    match p with
    | Predicate.Cmp (Predicate.Eq, Predicate.Col a, Predicate.Col b) -> (
      let pa = resolve layout a and pb = resolve layout b in
      let sa = slot_of_position layout pa and sb = slot_of_position layout pb in
      if sa = sb then
        filters.(sa) <- p :: filters.(sa)
      else
        let later, (probe_pos, build_pos) =
          if sa < sb then sb, (pa, pb - layout.offsets.(sb))
          else sa, (pb, pa - layout.offsets.(sa))
        in
        joins.(later) <- { probe_pos; build_pos } :: joins.(later))
    | _ -> (
      match max_position layout p with
      | -1 -> pre := p :: !pre
      | pos -> (
        let s = slot_of_position layout pos in
        filters.(s) <- p :: filters.(s)))
  in
  List.iter assign (Predicate.conjuncts cond);
  (!pre, joins, filters)

(* Compile a residual conjunct once per term: attribute positions are
   resolved ahead of the row loop, so applying the filter is a small
   association lookup instead of a scan over the whole column layout. All
   attributes are bound by the time the filter is applied. *)
let compile_filter layout p =
  let resolved =
    List.map (fun a -> (a, resolve layout a)) (Predicate.attrs p)
  in
  let position a =
    let rec find = function
      | [] -> resolve layout a
      | (a', i) :: rest -> if Attr.equal a a' then i else find rest
    in
    find resolved
  in
  fun (row : Value.t array) -> Predicate.eval (fun a -> row.(position a)) p

let slot_contents db = function
  | Term.Base s -> Db.contents db s.Schema.name
  | Term.Lit (s, g, tup) ->
    Schema.check_tuple s tup;
    Bag.singleton ~count:(Sign.to_int g) tup

(* Core term evaluation: left-to-right join of the slots with per-slot hash
   joins on equality conjuncts, residual filters applied as soon as their
   last column is bound, and final projection into a signed bag. Replication
   counts multiply across slots, which is exactly the sign-product rule of
   Section 4.1 read through ℤ counts. *)
let term db (t : Term.t) =
  let layout = layout_of_slots t.Term.slots in
  let pre, joins, filters = classify_conjuncts layout t.Term.slots t.Term.cond in
  let statically_false =
    List.exists (fun p -> not (Predicate.eval (fun _ -> assert false) p)) pre
  in
  if statically_false then Bag.empty
  else begin
    let proj_positions =
      Array.of_list (List.map (resolve layout) t.Term.proj)
    in
    let rows = ref [ (([||] : Value.t array), 1) ] in
    List.iteri
      (fun i slot ->
        let contents = slot_contents db slot in
        let fs = List.map (compile_filter layout) filters.(i) in
        let apply_filters row = List.for_all (fun f -> f row) fs in
        let next =
          match joins.(i) with
          | [] ->
            (* Nested-loop extension. *)
            List.concat_map
              (fun (row, cnt) ->
                Bag.fold
                  (fun tup n acc ->
                    let row' = Tuple.concat row tup in
                    if apply_filters row' then (row', cnt * n) :: acc else acc)
                  contents [])
              !rows
          | keys ->
            (* Hash join: build on the new slot, probe with partial rows. *)
            let tbl : (Value.t list, (Tuple.t * int) list) Hashtbl.t =
              Hashtbl.create 64
            in
            Bag.iter
              (fun tup n ->
                let key = List.map (fun k -> Tuple.get tup k.build_pos) keys in
                let prev = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
                Hashtbl.replace tbl key ((tup, n) :: prev))
              contents;
            List.concat_map
              (fun (row, cnt) ->
                let key = List.map (fun k -> row.(k.probe_pos)) keys in
                match Hashtbl.find_opt tbl key with
                | None -> []
                | Some matches ->
                  List.filter_map
                    (fun (tup, n) ->
                      let row' = Tuple.concat row tup in
                      if apply_filters row' then Some (row', cnt * n) else None)
                    matches)
              !rows
        in
        rows := next)
      t.Term.slots;
    let sign_factor = Sign.to_int t.Term.sign in
    List.fold_left
      (fun acc (row, cnt) ->
        Bag.add ~count:(cnt * sign_factor) (Tuple.project proj_positions row) acc)
      Bag.empty !rows
  end

let query db q =
  List.fold_left (fun acc t -> Bag.plus acc (term db t)) Bag.empty q

let view db v = query db (Query.of_view v)

let literal_term (t : Term.t) =
  if not (Term.is_all_literals t) then
    error "literal_term: term still references base relations";
  term Db.empty t

let literal_query q =
  List.fold_left (fun acc t -> Bag.plus acc (literal_term t)) Bag.empty q
