(** The analysis variables of Table 1, with the paper's default values
    (C = 100, S = 4 bytes, σ = 1/2, J = 4, K = 20). *)

type t = private {
  c : int;  (** cardinality of a relation *)
  s : int;  (** size of the projected attributes, bytes *)
  sigma : float;  (** selection factor σ *)
  j : float;  (** join factor J *)
  k_per_block : int;  (** tuples per physical block K *)
}

val default : t

val make :
  ?c:int -> ?s:int -> ?sigma:float -> ?j:float -> ?k_per_block:int -> unit -> t
(** @raise Invalid_argument on out-of-range values. *)

val blocks : t -> int
(** [I = ⌈C/K⌉] — I/Os to read one base relation. *)

val half_blocks : t -> int
(** [I' = ⌈C/(2K)⌉] — double-block buffer loads for Scenario 2. *)

val pp : Format.formatter -> t -> unit

val rows : Format.formatter -> t -> unit
(** Table 1, row per variable. *)
