(* Smallest k in [lo, hi] from which [f] stays at or above [g]; None when
   no such point exists. Used to locate the figures' crossovers, e.g. the
   k beyond which even best-case ECA transfers more than one-shot RV. *)
let first_dominating ~lo ~hi f g =
  if lo > hi then invalid_arg "Crossover.first_dominating: empty range";
  let holds_from k0 =
    let rec all k = k > hi || (f k >= g k && all (k + 1)) in
    all k0
  in
  let rec scan k = if k > hi then None else if holds_from k then Some k else scan (k + 1) in
  scan lo

let first_at_or_above ~lo ~hi f g =
  let rec scan k =
    if k > hi then None else if f k >= g k then Some k else scan (k + 1)
  in
  if lo > hi then invalid_arg "Crossover.first_at_or_above: empty range";
  scan lo
