(* Section 6.1: update notifications are identical for every algorithm and
   excluded; M counts query and answer messages. *)

let rv ~k ~period =
  if period <= 0 then invalid_arg "Messages.rv: period must be > 0";
  2 * ((k + period - 1) / period)

let eca ~k = 2 * k

(* LCA additionally ships each compensation as its own round-trip: under a
   worst-case interleaving update j compensates up to j-1 pending pieces.
   Bounds, not closed forms from the paper (LCA's cost is only discussed
   qualitatively there). *)
let lca_upper ~k = k * (k + 1)

let sc ~k:_ = 0
