let fi = float_of_int

(* --- The three-update scenario of Section 6.2 / Appendix D.2 --- *)

(* RV recomputing once: the whole view is shipped, S * sigma * C * J^2. *)
let rv_best (p : Params.t) = fi p.Params.s *. p.Params.sigma *. fi p.Params.c *. (p.Params.j ** 2.0)

(* RV recomputing after each of the three updates. *)
let rv_worst p = 3.0 *. rv_best p

(* ECA with no compensation: each V<U> ships sigma * J^2 tuples. *)
let eca_best (p : Params.t) = 3.0 *. fi p.Params.s *. p.Params.sigma *. (p.Params.j ** 2.0)

(* ECA with all updates before any answer: each of the three single-tuple
   compensating terms adds S * sigma * J. *)
let eca_worst (p : Params.t) =
  3.0 *. fi p.Params.s *. p.Params.sigma *. p.Params.j *. (p.Params.j +. 1.0)

(* --- The k-update generalization --- *)

let rv_best_k p ~k:_ = rv_best p

let rv_worst_k p ~k = fi k *. rv_best p

(* RV recomputing every s updates: ⌈k/s⌉ recomputes. *)
let rv_period_k p ~k ~period =
  if period <= 0 then invalid_arg "Transfer.rv_period_k: period must be > 0";
  fi ((k + period - 1) / period) *. rv_best p

let eca_best_k (p : Params.t) ~k =
  fi k *. fi p.Params.s *. p.Params.sigma *. (p.Params.j ** 2.0)

(* Update U_j compensates, on average, 2(j-1)/3 prior updates on other
   relations, each costing S*sigma*J; summing j = 1..k yields the
   quadratic k(k-1)SsigmaJ/3 compensation overhead. *)
let eca_worst_k (p : Params.t) ~k =
  eca_best_k p ~k
  +. fi k *. fi (k - 1) *. fi p.Params.s *. p.Params.sigma *. p.Params.j /. 3.0
