(** Closed forms for B — bytes transferred from source to warehouse —
    from Section 6.2 and Appendix D.2, over the Example-6 scenario
    (V = π_{W,Z} σ_cond (r1 ⋈ r2 ⋈ r3), single-tuple inserts spread
    uniformly over the three relations).

    Three-update forms:
    - [rv_best]  [= SσCJ²]      (recompute once)
    - [rv_worst] [= 3SσCJ²]     (recompute after every update)
    - [eca_best] [= 3SσJ²]      (no compensation needed)
    - [eca_worst][= 3SσJ(J+1)]  (all updates precede all answers)

    k-update forms:
    - [rv_best_k]  [= SσCJ²]
    - [rv_worst_k] [= kSσCJ²]
    - [eca_best_k] [= kSσJ²]
    - [eca_worst_k][= kSσJ² + k(k−1)SσJ/3]

    The expected crossovers these imply (defaults, C = 100): ECA-best
    meets RV-best at k = C = 100; ECA-worst crosses RV-best around k ≈ 30
    (Figure 6.3). *)

val rv_best : Params.t -> float
val rv_worst : Params.t -> float
val eca_best : Params.t -> float
val eca_worst : Params.t -> float

val rv_best_k : Params.t -> k:int -> float
val rv_worst_k : Params.t -> k:int -> float

val rv_period_k : Params.t -> k:int -> period:int -> float
(** RV recomputing every [period] updates: [⌈k/period⌉ · SσCJ²]. *)

val eca_best_k : Params.t -> k:int -> float
val eca_worst_k : Params.t -> k:int -> float
