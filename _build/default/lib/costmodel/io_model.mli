(** Closed forms for the IO metric — I/Os performed at the source — from
    Section 6.3 and Appendix D.3, over the Example-6 scenario.

    Scenario 1 (clustering/non-clustering indexes, ample memory),
    three-update forms with [I = ⌈C/K⌉]:
    - RV best [3I], worst [9I];
    - ECA best [3·min(I,J) + 3], worst [3·min(I,J) + 6].

    Scenario 2 (no indexes, three memory blocks), with [I' = ⌈C/(2K)⌉]:
    - RV best [I³], worst [3I³];
    - ECA best [3II'], worst [3I(I'+1)].

    k-update generalizations (the paper assumes [J < I] here):
    - Scenario 1: RV [3I] / [3kI]; ECA [k(J+1)] / [k(J+1) + k(k−1)/3];
    - Scenario 2: RV [I³] / [kI³]; ECA [kII'] / [kII' + Ik(k−1)/3].

    Expected crossovers at the defaults (I = 5, J = 4): ECA loses to
    one-shot RV at k ≈ 3 in Scenario 1 and between k = 5 and 8 in
    Scenario 2 — far earlier than the transfer-cost crossovers, i.e. ECA
    is less effective at saving I/O than at saving bandwidth. *)

type scenario =
  | Scenario1
  | Scenario2

val s1_rv_best : Params.t -> int
val s1_rv_worst : Params.t -> int
val s1_eca_best : Params.t -> int
val s1_eca_worst : Params.t -> int

val s2_rv_best : Params.t -> int
val s2_rv_worst : Params.t -> int
val s2_eca_best : Params.t -> int
val s2_eca_worst : Params.t -> int

val rv_best_k : scenario -> Params.t -> k:int -> float
val rv_worst_k : scenario -> Params.t -> k:int -> float
val eca_best_k : scenario -> Params.t -> k:int -> float
val eca_worst_k : scenario -> Params.t -> k:int -> float

val rv_period_k : scenario -> Params.t -> k:int -> period:int -> float
(** RV recomputing every [period] updates. *)
