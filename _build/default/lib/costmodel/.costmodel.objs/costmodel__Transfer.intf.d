lib/costmodel/transfer.mli: Params
