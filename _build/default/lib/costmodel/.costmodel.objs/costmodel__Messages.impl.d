lib/costmodel/messages.ml:
