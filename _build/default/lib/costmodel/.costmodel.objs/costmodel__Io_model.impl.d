lib/costmodel/io_model.ml: Float Params
