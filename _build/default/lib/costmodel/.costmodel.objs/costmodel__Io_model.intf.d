lib/costmodel/io_model.mli: Params
