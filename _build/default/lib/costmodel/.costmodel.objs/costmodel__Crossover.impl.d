lib/costmodel/crossover.ml:
