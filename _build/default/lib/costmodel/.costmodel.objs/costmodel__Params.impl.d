lib/costmodel/params.ml: Format
