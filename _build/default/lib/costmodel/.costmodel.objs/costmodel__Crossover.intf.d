lib/costmodel/crossover.mli:
