lib/costmodel/transfer.ml: Params
