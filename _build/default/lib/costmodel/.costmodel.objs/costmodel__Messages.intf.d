lib/costmodel/messages.mli:
