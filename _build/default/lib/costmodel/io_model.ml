type scenario =
  | Scenario1
  | Scenario2

let fi = float_of_int

let i_of p = Params.blocks p
let i'_of p = Params.half_blocks p

(* --- Scenario 1 (indexes + ample memory), three updates --- *)

let s1_rv_best p = 3 * i_of p
let s1_rv_worst p = 9 * i_of p

(* 3 min(I, J) + 3: each V<U_i> costs between (J+1)-ish and (I+1)-ish;
   summed over the three updates the paper derives 3 min(I,J) + 3. *)
let s1_eca_best p =
  (3 * min (i_of p) (int_of_float (Float.ceil p.Params.j))) + 3

let s1_eca_worst p = s1_eca_best p + 3

(* --- Scenario 2 (no indexes, 3 blocks), three updates --- *)

let s2_rv_best p = i_of p * i_of p * i_of p
let s2_rv_worst p = 3 * s2_rv_best p
let s2_eca_best p = 3 * i_of p * i'_of p
let s2_eca_worst p = 3 * i_of p * (i'_of p + 1)

(* --- k-update generalizations (Appendix D.3.3; assumes J < I) --- *)

let s1_rv_best_k p ~k:_ = fi (3 * i_of p)
let s1_rv_worst_k p ~k = fi (3 * k * i_of p)

let s1_eca_best_k (p : Params.t) ~k = fi k *. (p.Params.j +. 1.0)

let s1_eca_worst_k (p : Params.t) ~k =
  s1_eca_best_k p ~k +. (fi k *. fi (k - 1) /. 3.0)

let s2_rv_best_k p ~k:_ = fi (s2_rv_best p)
let s2_rv_worst_k p ~k = fi k *. fi (s2_rv_best p)

let s2_eca_best_k p ~k = fi k *. fi (i_of p) *. fi (i'_of p)

let s2_eca_worst_k p ~k =
  s2_eca_best_k p ~k +. (fi (i_of p) *. fi k *. fi (k - 1) /. 3.0)

(* RV recomputing every [period] updates. *)
let rv_period_k scenario p ~k ~period =
  if period <= 0 then invalid_arg "Io_model.rv_period_k: period must be > 0";
  let recomputes = (k + period - 1) / period in
  match scenario with
  | Scenario1 -> fi (recomputes * 3 * i_of p)
  | Scenario2 -> fi (recomputes * s2_rv_best p)

let rv_best_k scenario =
  match scenario with
  | Scenario1 -> s1_rv_best_k
  | Scenario2 -> s2_rv_best_k

let rv_worst_k scenario =
  match scenario with
  | Scenario1 -> s1_rv_worst_k
  | Scenario2 -> s2_rv_worst_k

let eca_best_k scenario =
  match scenario with
  | Scenario1 -> s1_eca_best_k
  | Scenario2 -> s2_eca_best_k

let eca_worst_k scenario =
  match scenario with
  | Scenario1 -> s1_eca_worst_k
  | Scenario2 -> s2_eca_worst_k
