(** Crossover location for the cost curves: the update-sequence lengths at
    which recomputation starts beating incremental maintenance — the
    quantities the paper reads off Figures 6.3–6.5. *)

val first_dominating :
  lo:int -> hi:int -> (int -> float) -> (int -> float) -> int option
(** [first_dominating ~lo ~hi f g] is the smallest [k] such that
    [f k' >= g k'] for every [k'] in [[k, hi]] (a stable crossover). *)

val first_at_or_above :
  lo:int -> hi:int -> (int -> float) -> (int -> float) -> int option
(** The first [k] with [f k >= g k]. *)
