type t = {
  c : int;
  s : int;
  sigma : float;
  j : float;
  k_per_block : int;
}

let default = { c = 100; s = 4; sigma = 0.5; j = 4.0; k_per_block = 20 }

let make ?(c = default.c) ?(s = default.s) ?(sigma = default.sigma)
    ?(j = default.j) ?(k_per_block = default.k_per_block) () =
  if c < 0 then invalid_arg "Params.make: C must be non-negative";
  if s <= 0 then invalid_arg "Params.make: S must be positive";
  if sigma < 0.0 || sigma > 1.0 then
    invalid_arg "Params.make: sigma must lie in [0, 1]";
  if j <= 0.0 then invalid_arg "Params.make: J must be positive";
  if k_per_block <= 0 then invalid_arg "Params.make: K must be positive";
  { c; s; sigma; j; k_per_block }

let ceil_div a b = (a + b - 1) / b

(* I = ⌈C/K⌉: blocks needed to read one base relation. *)
let blocks t = ceil_div t.c t.k_per_block

(* I' = ⌈C/(2K)⌉: double-block buffer loads (Scenario 2, two relations). *)
let half_blocks t = ceil_div t.c (2 * t.k_per_block)

let pp ppf t =
  Format.fprintf ppf "C=%d S=%d sigma=%.2f J=%.1f K=%d (I=%d, I'=%d)" t.c t.s
    t.sigma t.j t.k_per_block (blocks t) (half_blocks t)

let rows ppf t =
  Format.fprintf ppf
    "C  cardinality of a relation        %d@\n\
     S  size of projected attributes     %d bytes@\n\
     sigma  selection factor             %.2f@\n\
     J  join factor                      %.1f@\n\
     K  tuples per physical block        %d"
    t.c t.s t.sigma t.j t.k_per_block
