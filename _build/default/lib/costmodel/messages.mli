(** Message-count analysis of Section 6.1. Update notification messages
    are identical across algorithms and excluded, as in the paper. *)

val rv : k:int -> period:int -> int
(** [2⌈k/s⌉]: one query + one answer per recompute. Ranges from 2
    ([period = k]) to [2k] ([period = 1]). *)

val eca : k:int -> int
(** [2k]: every update costs one query and one answer. *)

val lca_upper : k:int -> int
(** Upper bound [k(k+1)] when every compensation is its own round-trip
    under maximal contention (the paper discusses LCA only qualitatively;
    the benches report measured counts). *)

val sc : k:int -> int
(** 0 — store-copies never queries the source. *)
