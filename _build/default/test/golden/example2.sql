-- Example 2 of the paper as a runnable script
TABLE r1 (W INT, X INT);
TABLE r2 (X INT, Y INT);
VIEW v AS SELECT r1.W FROM r1, r2 WHERE r1.X = r2.X;
INSERT INTO r1 VALUES (1, 2);
UPDATES;
INSERT INTO r2 VALUES (2, 3);
INSERT INTO r1 VALUES (4, 2);
