(* Terms, queries and the substitution operator Q<U> of Section 4.2,
   including Lemma B.2 — the identity the whole compensation scheme rests
   on — as a qcheck property. *)

open Helpers
module R = Relational

let view = view_w3 ()

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let subst_replaces_relation () =
  let q = R.Query.view_delta view (ins "r2" [ 2; 5 ]) in
  check_int "one term" 1 (R.Query.term_count q);
  let t = List.hd (R.Query.terms q) in
  Alcotest.(check (list string))
    "r2 became a literal; r1 and r3 remain"
    [ "r1"; "r3" ]
    (R.Term.base_relations t)

let subst_same_relation_vanishes () =
  let q = R.Query.view_delta view (ins "r2" [ 2; 5 ]) in
  check_bool "substituting r2 again yields the empty query" true
    (R.Query.is_empty (R.Query.subst q (ins "r2" [ 9; 9 ])));
  (* Q<U1,...,Uk> with two updates on the same relation is empty. *)
  check_bool "subst_all with duplicate relation" true
    (R.Query.is_empty
       (R.Query.subst_all (R.Query.of_view view)
          [ ins "r2" [ 2; 5 ]; ins "r1" [ 1; 1 ]; ins "r2" [ 3; 3 ] ]))

let subst_unrelated_relation_vanishes () =
  let v12 = view_w () in
  let q = R.Query.of_view v12 in
  check_bool "update on a relation outside the view" true
    (R.Query.is_empty (R.Query.subst q (ins "r3" [ 1; 1 ])))

let negation_flips_signs () =
  let q = R.Query.view_delta view (ins "r1" [ 4; 2 ]) in
  let n = R.Query.negate q in
  List.iter2
    (fun (a : R.Term.t) (b : R.Term.t) ->
      check_bool "sign flipped" true
        (R.Sign.equal a.R.Term.sign (R.Sign.negate b.R.Term.sign)))
    (R.Query.terms q) (R.Query.terms n)

let delete_substitutes_negative_literal () =
  let q = R.Query.view_delta view (del "r1" [ 1; 2 ]) in
  let t = List.hd (R.Query.terms q) in
  let lit_sign =
    List.find_map
      (function
        | R.Term.Lit (_, s, _) -> Some s
        | R.Term.Base _ -> None)
      t.R.Term.slots
  in
  check_bool "literal carries the minus sign" true
    (match lit_sign with Some s -> R.Sign.equal s R.Sign.Neg | None -> false)

let split_local_detects_literal_terms () =
  let q = R.Query.of_view view in
  let q = R.Query.subst q (ins "r1" [ 4; 2 ]) in
  let q = R.Query.subst q (ins "r2" [ 2; 5 ]) in
  let q = R.Query.subst q (ins "r3" [ 5; 3 ]) in
  let local, remote = R.Query.split_local q in
  check_int "fully substituted term is local" 1 (R.Query.term_count local);
  check_bool "nothing remote" true (R.Query.is_empty remote)

let view_delta_of_single_relation_view_is_local () =
  let v =
    R.View.make ~name:"V1"
      ~proj:[ R.Attr.unqualified "W" ]
      ~cond:(R.Parser.parse_predicate "X = 2")
      [ r1 ]
  in
  let local, remote = R.Query.split_local (R.Query.view_delta v (ins "r1" [ 7; 2 ])) in
  check_bool "no base slot left" true (R.Query.is_empty remote);
  check_bag "literal evaluation"
    (bag [ [ 7 ] ])
    (R.Eval.literal_query local)

let simplify_cancels_pairs () =
  let t = R.Term.of_view view in
  check_int "T + (-T) cancels" 0
    (R.Query.term_count (R.Query.simplify [ t; R.Term.negate t ]));
  check_int "T + (-T) + T keeps one copy" 1
    (R.Query.term_count (R.Query.simplify [ t; R.Term.negate t; t ]));
  check_int "distinct terms kept" 2
    (R.Query.term_count
       (R.Query.simplify
          (R.Query.plus
             (R.Query.view_delta view (ins "r1" [ 1; 1 ]))
             (R.Query.view_delta view (ins "r2" [ 1; 1 ])))))

let query_byte_size_grows_with_terms () =
  let q1 = R.Query.view_delta view (ins "r1" [ 4; 2 ]) in
  let q2 = R.Query.minus q1 (R.Query.subst q1 (ins "r2" [ 2; 5 ])) in
  check_bool "more terms, more bytes" true
    (R.Query.byte_size q2 > R.Query.byte_size q1)

(* ------------------------------------------------------------------ *)
(* Lemma B.2: Q[ss_{j-1}] = Q[ss_j] - Q<U_j>[ss_j]                     *)
(* ------------------------------------------------------------------ *)

let tuple2_gen range = QCheck.Gen.(map R.Tuple.ints (list_size (return 2) (int_bound range)))

(* A random instance of the chain schema plus an applicable update. *)
let instance_gen =
  QCheck.Gen.(
    let* rows1 = list_size (int_bound 6) (tuple2_gen 4) in
    let* rows2 = list_size (int_bound 6) (tuple2_gen 4) in
    let* rows3 = list_size (int_bound 6) (tuple2_gen 4) in
    let db =
      R.Db.of_list
        [
          (r1, R.Bag.of_list rows1);
          (r2, R.Bag.of_list rows2);
          (r3, R.Bag.of_list rows3);
        ]
    in
    let* rel = oneofl [ "r1"; "r2"; "r3" ] in
    let* tuple = tuple2_gen 4 in
    let* kind_insert = bool in
    let u =
      if kind_insert || R.Bag.count (R.Db.contents db rel) tuple <= 0 then
        R.Update.insert rel tuple
      else R.Update.delete rel tuple
    in
    (* A query shaped like the ones ECA builds: V<U'> for some other
       update, possibly with compensating terms. *)
    let* rel' = oneofl [ "r1"; "r2"; "r3" ] in
    let* tuple' = tuple2_gen 4 in
    let q0 = R.Query.view_delta view (R.Update.insert rel' tuple') in
    let q = if R.Query.is_empty q0 then R.Query.of_view view else q0 in
    return (db, u, q))

let arb_instance =
  QCheck.make
    ~print:(fun (db, u, q) ->
      Format.asprintf "%a / %a / %a" R.Db.pp db R.Update.pp u R.Query.pp q)
    instance_gen

let lemma_b2 =
  QCheck.Test.make ~name:"Lemma B.2: Q[ss] = Q[ss+U] - Q<U>[ss+U]" ~count:300
    arb_instance (fun (db, u, q) ->
      let before = R.Eval.query db q in
      let db' = R.Db.apply ~strict:false db u in
      let after = R.Eval.query db' q in
      let comp = R.Eval.query db' (R.Query.subst q u) in
      R.Bag.equal before (R.Bag.minus after comp))

let simplify_preserves_value =
  QCheck.Test.make ~name:"simplify preserves query value" ~count:300
    arb_instance (fun (db, u, q) ->
      (* amplify with duplicated and negated copies *)
      let q = R.Query.plus q (R.Query.plus (R.Query.negate q) (R.Query.subst q u)) in
      R.Bag.equal (R.Eval.query db q) (R.Eval.query db (R.Query.simplify q)))

let lemma_b2_full_view =
  QCheck.Test.make ~name:"Lemma B.2 for the full view query" ~count:300
    arb_instance (fun (db, u, _) ->
      let q = R.Query.of_view view in
      let before = R.Eval.query db q in
      let db' = R.Db.apply ~strict:false db u in
      let after = R.Eval.query db' q in
      let comp = R.Eval.query db' (R.Query.subst q u) in
      R.Bag.equal before (R.Bag.minus after comp))

let suite =
  [
    Alcotest.test_case "subst replaces the relation slot" `Quick
      subst_replaces_relation;
    Alcotest.test_case "subst on an already-substituted relation vanishes"
      `Quick subst_same_relation_vanishes;
    Alcotest.test_case "subst on an unrelated relation vanishes" `Quick
      subst_unrelated_relation_vanishes;
    Alcotest.test_case "negation flips term signs" `Quick negation_flips_signs;
    Alcotest.test_case "deletes substitute negative literals" `Quick
      delete_substitutes_negative_literal;
    Alcotest.test_case "split_local finds literal-only terms" `Quick
      split_local_detects_literal_terms;
    Alcotest.test_case "single-relation view deltas are local" `Quick
      view_delta_of_single_relation_view_is_local;
    Alcotest.test_case "simplify cancels opposite terms" `Quick
      simplify_cancels_pairs;
    Alcotest.test_case "query byte size grows with terms" `Quick
      query_byte_size_grows_with_terms;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ lemma_b2; lemma_b2_full_view; simplify_preserves_value ]
