(* The batched-update extension (Section 7: "handle a set of updates at
   once ... should result in a very useful performance enhancement"):
   batches are atomic source events with a single notification; ECA folds
   each batch into one query, LCA into one delta slot. *)

open Helpers
module R = Relational

let run_batched ?(schedule = Core.Scheduler.Worst_case) ~algorithm ~batch_size
    ~views ~db ~updates () =
  Core.Runner.run ~schedule ~batch_size
    ~creator:(Core.Registry.creator_exn algorithm)
    ~views ~db ~updates ()

let example4_setup () =
  let db = db_of [ (r1, [ [ 1; 2 ] ]); (r2, []); (r3, []) ] in
  let updates =
    [ ins "r1" [ 4; 2 ]; ins "r3" [ 5; 3 ]; ins "r2" [ 2; 5 ] ]
  in
  (db, view_w3 (), updates)

let eca_batch_correct () =
  let db, view, updates = example4_setup () in
  let result =
    run_batched ~algorithm:"eca" ~batch_size:3 ~views:[ view ] ~db ~updates ()
  in
  check_bag "batched run is correct"
    (bag [ [ 1 ]; [ 4 ] ])
    (List.assoc "V" result.Core.Runner.final_mvs);
  check_bool "strongly consistent" true
    (List.assoc "V" result.Core.Runner.reports)
      .Core.Consistency.strongly_consistent

let eca_batch_message_savings () =
  let db = db_of [ (r1, [ [ 1; 2 ] ]); (r2, []) ] in
  let updates = List.init 12 (fun i -> ins "r2" [ 2; i ]) in
  let messages batch_size =
    let r =
      run_batched ~algorithm:"eca" ~batch_size ~views:[ view_w () ] ~db
        ~updates ()
    in
    Core.Metrics.messages r.Core.Runner.metrics
  in
  check_int "unbatched: 2k" 24 (messages 1);
  check_int "batch of 3: 2*ceil(k/3)" 8 (messages 3);
  check_int "batch of 12: one round trip" 2 (messages 12)

let eca_batch_agrees_with_unbatched () =
  let { Workload.Scenarios.db; view; updates } =
    Workload.Scenarios.example6
      (Workload.Spec.make ~c:30 ~j:3 ~k_updates:18 ~insert_ratio:0.6 ~seed:4 ())
  in
  let final algorithm batch_size =
    let r =
      run_batched ~algorithm ~batch_size ~views:[ view ] ~db ~updates ()
    in
    List.assoc "V" r.Core.Runner.final_mvs
  in
  List.iter
    (fun algorithm ->
      let unbatched = final algorithm 1 in
      List.iter
        (fun b ->
          check_bag
            (Printf.sprintf "%s: batch %d agrees" algorithm b)
            unbatched (final algorithm b))
        [ 2; 3; 5; 18 ])
    [ "eca"; "lca"; "rv"; "sc"; "basic" ]

let lca_batch_complete_at_boundaries () =
  let db, view, updates = example4_setup () in
  let result =
    run_batched ~algorithm:"lca" ~batch_size:3 ~views:[ view ] ~db ~updates ()
  in
  check_bool "complete w.r.t. batch boundaries" true
    (List.assoc "V" result.Core.Runner.reports).Core.Consistency.complete

let lca_batch_mixed_sizes () =
  (* k not divisible by the batch size: a trailing partial batch. *)
  let db = db_of [ (r1, [ [ 1; 2 ] ]); (r2, []); (r3, []) ] in
  let updates =
    [
      ins "r2" [ 2; 5 ]; ins "r3" [ 5; 3 ]; ins "r1" [ 4; 2 ];
      ins "r3" [ 5; 9 ]; ins "r2" [ 2; 7 ];
    ]
  in
  let result =
    run_batched ~algorithm:"lca" ~batch_size:2 ~views:[ view_w3 () ] ~db
      ~updates ()
  in
  let expected = R.Eval.view (R.Db.apply_all db updates) (view_w3 ()) in
  check_bag "correct final view" expected
    (List.assoc "V" result.Core.Runner.final_mvs);
  check_bool "complete" true
    (List.assoc "V" result.Core.Runner.reports).Core.Consistency.complete

let ecak_batch_with_inner_race () =
  (* insert-then-delete of the same tuple within one batch: the tombstone
     logic must still hold when the notifications arrive together. *)
  let db = db_of [ (r1_wkey, [ [ 0; 0 ] ]); (r2_ykey, []) ] in
  let view = view_wy ~r1:r1_wkey ~r2:r2_ykey () in
  let updates = [ ins "r2" [ 0; 0 ]; del "r2" [ 0; 0 ]; ins "r2" [ 0; 0 ] ] in
  let result =
    run_batched ~algorithm:"eca-key" ~batch_size:3 ~views:[ view ] ~db
      ~updates ()
  in
  check_bag "net effect survives in-batch race"
    (bag [ [ 0; 0 ] ])
    (List.assoc "V" result.Core.Runner.final_mvs)

let modification_as_batched_pair () =
  (* The paper models a modification as delete + insert; a batch of two
     makes it atomic end to end. *)
  let db = db_of [ (r1, [ [ 1; 2 ] ]); (r2, [ [ 2; 3 ] ]) ] in
  let updates = [ del "r1" [ 1; 2 ]; ins "r1" [ 9; 2 ] ] in
  let result =
    run_batched ~algorithm:"eca" ~batch_size:2 ~views:[ view_w () ] ~db
      ~updates ()
  in
  check_bag "modified tuple" (bag [ [ 9 ] ])
    (List.assoc "V" result.Core.Runner.final_mvs);
  (* atomicity: the warehouse never shows the view without either value *)
  let states = Core.Trace.warehouse_states result.Core.Runner.trace "V" in
  check_bool "no intermediate empty view" false
    (List.exists R.Bag.is_empty states)

(* qcheck: batched runs of every algorithm stay correct across random
   workloads, batch sizes and schedules. *)
let batch_prop =
  QCheck.Test.make ~name:"batched runs remain strongly consistent" ~count:60
    (QCheck.make
       ~print:(fun (seed, b) -> Printf.sprintf "seed=%d batch=%d" seed b)
       QCheck.Gen.(pair (int_bound 1000) (int_range 2 5)))
    (fun (seed, batch_size) ->
      let { Workload.Scenarios.db; view; updates } =
        Workload.Scenarios.example6
          (Workload.Spec.make ~c:15 ~j:3 ~k_updates:9 ~insert_ratio:0.7 ~seed ())
      in
      let expected = R.Eval.view (R.Db.apply_all db updates) view in
      List.for_all
        (fun (algorithm, needs_complete) ->
          List.for_all
            (fun schedule ->
              let r =
                run_batched ~schedule ~algorithm ~batch_size ~views:[ view ]
                  ~db ~updates ()
              in
              let report = List.assoc "V" r.Core.Runner.reports in
              let ok_level =
                if needs_complete then report.Core.Consistency.complete
                else report.Core.Consistency.strongly_consistent
              in
              ok_level
              && R.Bag.equal expected (List.assoc "V" r.Core.Runner.final_mvs))
            [
              Core.Scheduler.Best_case; Core.Scheduler.Worst_case;
              Core.Scheduler.Random seed;
            ])
        [ ("eca", false); ("lca", true); ("sc", true); ("rv", false) ])

let suite =
  [
    Alcotest.test_case "ECA batch is correct" `Quick eca_batch_correct;
    Alcotest.test_case "ECA batch message savings" `Quick
      eca_batch_message_savings;
    Alcotest.test_case "batched agrees with unbatched" `Quick
      eca_batch_agrees_with_unbatched;
    Alcotest.test_case "LCA batch complete at boundaries" `Quick
      lca_batch_complete_at_boundaries;
    Alcotest.test_case "LCA partial trailing batch" `Quick
      lca_batch_mixed_sizes;
    Alcotest.test_case "ECAK in-batch insert/delete race" `Quick
      ecak_batch_with_inner_race;
    Alcotest.test_case "modification as an atomic batched pair" `Quick
      modification_as_batched_pair;
  ]
  @ [ QCheck_alcotest.to_alcotest batch_prop ]
