(* Unit tests for the relational substrate: values, tuples, attributes,
   schemas, predicates, updates, and database instances. *)

open Helpers
module R = Relational

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

let value_order () =
  check_bool "ints by value" true (R.Value.compare (Int 1) (Int 2) < 0);
  check_bool "strings by value" true
    (R.Value.compare (Str "a") (Str "b") < 0);
  check_bool "cross-type order is stable" true
    (R.Value.compare (Int 5) (Str "a") < 0);
  check_bool "equal ints" true (R.Value.equal (Int 7) (Int 7))

let value_predicate_compare () =
  check_bool "int vs float numerically" true
    (R.Value.compare_for_predicate (Int 2) (Float 1.5) > 0);
  check_bool "float vs int numerically" true
    (R.Value.compare_for_predicate (Float 1.5) (Int 2) < 0);
  check_int "int/float equal" 0
    (R.Value.compare_for_predicate (Int 2) (Float 2.0))

let value_bytes () =
  check_int "int is 4 bytes" 4 (R.Value.byte_size (Int 12345));
  check_int "float is 8 bytes" 8 (R.Value.byte_size (Float 1.0));
  check_int "string is its length" 5 (R.Value.byte_size (Str "hello"));
  check_int "bool is 1 byte" 1 (R.Value.byte_size (Bool true))

let value_types () =
  Alcotest.(check (option string))
    "INT parses" (Some "INT")
    (Option.map R.Value.ty_to_string (R.Value.ty_of_string "integer"));
  Alcotest.(check (option string))
    "unknown type rejected" None
    (Option.map R.Value.ty_to_string (R.Value.ty_of_string "BLOB"))

(* ------------------------------------------------------------------ *)
(* Tuples                                                              *)
(* ------------------------------------------------------------------ *)

let tuple_basics () =
  let t = R.Tuple.ints [ 1; 2; 3 ] in
  check_int "arity" 3 (R.Tuple.arity t);
  Alcotest.check value_testable "get" (Int 2) (R.Tuple.get t 1);
  check_int "byte size" 12 (R.Tuple.byte_size t);
  Alcotest.check tuple_testable "project"
    (R.Tuple.ints [ 3; 1 ])
    (R.Tuple.project [| 2; 0 |] t)

let tuple_order () =
  let a = R.Tuple.ints [ 1; 2 ] and b = R.Tuple.ints [ 1; 3 ] in
  check_bool "lexicographic" true (R.Tuple.compare a b < 0);
  check_bool "shorter first" true
    (R.Tuple.compare (R.Tuple.ints [ 9 ]) a < 0);
  check_bool "equal" true (R.Tuple.equal a (R.Tuple.ints [ 1; 2 ]))

(* ------------------------------------------------------------------ *)
(* Attributes                                                          *)
(* ------------------------------------------------------------------ *)

let attr_parsing () =
  let q = R.Attr.of_string "r1.X" in
  Alcotest.(check (option string)) "qualified rel" (Some "r1") q.R.Attr.rel;
  Alcotest.(check string) "qualified name" "X" q.R.Attr.name;
  let u = R.Attr.of_string "X" in
  Alcotest.(check (option string)) "unqualified" None u.R.Attr.rel

let attr_matching () =
  check_bool "qualified matches" true
    (R.Attr.matches ~rel:"r1" ~name:"X" (R.Attr.qualified "r1" "X"));
  check_bool "wrong relation" false
    (R.Attr.matches ~rel:"r2" ~name:"X" (R.Attr.qualified "r1" "X"));
  check_bool "unqualified matches any relation" true
    (R.Attr.matches ~rel:"r9" ~name:"X" (R.Attr.unqualified "X"))

(* ------------------------------------------------------------------ *)
(* Schemas                                                             *)
(* ------------------------------------------------------------------ *)

let schema_validation () =
  Alcotest.check_raises "duplicate columns rejected"
    (R.Schema.Schema_error "relation r has duplicate column names") (fun () ->
      ignore (R.Schema.of_names "r" [ "A"; "A" ]));
  Alcotest.check_raises "key must be a column"
    (R.Schema.Schema_error "key attribute Z is not a column of r") (fun () ->
      ignore (R.Schema.of_names ~key:[ "Z" ] "r" [ "A" ]))

let schema_lookup () =
  Alcotest.(check (option int)) "column index" (Some 1)
    (R.Schema.column_index r1 "X");
  Alcotest.(check (option int)) "missing column" None
    (R.Schema.column_index r1 "Q");
  Alcotest.(check (list int)) "key positions" [ 0 ]
    (R.Schema.key_positions r1_wkey)

let schema_arity_check () =
  Alcotest.check_raises "arity mismatch"
    (R.Schema.Schema_error
       "tuple [1] has arity 1 but relation r1 has arity 2") (fun () ->
      R.Schema.check_tuple r1 (R.Tuple.ints [ 1 ]))

(* ------------------------------------------------------------------ *)
(* Predicates                                                          *)
(* ------------------------------------------------------------------ *)

let pred_eval () =
  let lookup a =
    match R.Attr.to_string a with
    | "r1.W" -> R.Value.Int 3
    | "r1.X" -> R.Value.Int 7
    | other -> Alcotest.failf "unexpected lookup %s" other
  in
  let p = R.Parser.parse_predicate "r1.W < r1.X AND NOT r1.W = 4" in
  check_bool "evaluates" true (R.Predicate.eval lookup p);
  let q = R.Parser.parse_predicate "r1.W >= 4 OR r1.X <> 7" in
  check_bool "false branch" false (R.Predicate.eval lookup q)

let pred_conjuncts () =
  let p = R.Parser.parse_predicate "a = b AND c = d AND e > 1" in
  check_int "three conjuncts" 3 (List.length (R.Predicate.conjuncts p));
  check_int "conj of empty is True" 0
    (List.length (R.Predicate.conjuncts (R.Predicate.conj [])))

let pred_attrs () =
  let p = R.Parser.parse_predicate "r1.W > r3.Z AND r1.X = 4" in
  check_int "attribute references" 3 (List.length (R.Predicate.attrs p))

(* ------------------------------------------------------------------ *)
(* Updates and database instances                                      *)
(* ------------------------------------------------------------------ *)

let update_signs () =
  check_bool "insert is positive" true
    (R.Sign.equal R.Sign.Pos (R.Update.sign (ins "r1" [ 1; 2 ])));
  check_bool "delete is negative" true
    (R.Sign.equal R.Sign.Neg (R.Update.sign (del "r1" [ 1; 2 ])))

let db_apply () =
  let db = db_of [ (r1, [ [ 1; 2 ] ]) ] in
  let db = R.Db.apply db (ins "r1" [ 4; 2 ]) in
  check_bag "insert adds" (bag [ [ 1; 2 ]; [ 4; 2 ] ]) (R.Db.contents db "r1");
  let db = R.Db.apply db (del "r1" [ 1; 2 ]) in
  check_bag "delete removes" (bag [ [ 4; 2 ] ]) (R.Db.contents db "r1");
  check_int "total tuples" 1 (R.Db.total_tuples db)

let db_strict_delete () =
  let db = db_of [ (r1, []) ] in
  Alcotest.check_raises "strict delete of absent tuple"
    (R.Db.Db_error "delete of absent tuple: delete(r1, [9,9])") (fun () ->
      ignore (R.Db.apply db (del "r1" [ 9; 9 ])));
  let db' = R.Db.apply ~strict:false db (del "r1" [ 9; 9 ]) in
  check_bag "non-strict is a no-op" R.Bag.empty (R.Db.contents db' "r1")

let db_duplicates () =
  let db = db_of [ (r1, [ [ 1; 2 ]; [ 1; 2 ] ]) ] in
  check_int "bag keeps duplicates" 2
    (R.Bag.count (R.Db.contents db "r1") (R.Tuple.ints [ 1; 2 ]));
  let db = R.Db.apply db (del "r1" [ 1; 2 ]) in
  check_int "delete removes one copy" 1
    (R.Bag.count (R.Db.contents db "r1") (R.Tuple.ints [ 1; 2 ]))

let db_unknown_relation () =
  Alcotest.check_raises "unknown relation"
    (R.Db.Db_error "unknown relation nope") (fun () ->
      ignore (R.Db.contents R.Db.empty "nope"))

(* ------------------------------------------------------------------ *)
(* Views                                                               *)
(* ------------------------------------------------------------------ *)

let view_resolution () =
  let v = view_wy () in
  Alcotest.(check (list string))
    "projection resolved and qualified"
    [ "r1.W"; "r2.Y" ]
    (List.map R.Attr.to_string v.R.View.proj)

let view_ambiguity () =
  let dup = R.Schema.of_names "rr" [ "W"; "Q" ] in
  Alcotest.check_raises "ambiguous unqualified attribute"
    (R.View.View_error "attribute W is ambiguous; qualify it") (fun () ->
      ignore
        (R.View.make ~proj:[ R.Attr.unqualified "W" ] ~cond:R.Predicate.True
           [ r1; dup ]))

let view_duplicate_relations () =
  Alcotest.check_raises "duplicate relations rejected"
    (R.View.View_error
       "view V mentions a relation twice; the algorithms assume distinct \
        relations") (fun () ->
      ignore
        (R.View.make ~proj:[ R.Attr.qualified "r1" "W" ]
           ~cond:R.Predicate.True [ r1; r1 ]))

let view_key_coverage () =
  check_bool "W+Y view covers keys of keyed r1 and keyed r2" true
    (R.View.covers_all_keys (view_wy ~r1:r1_wkey ~r2:r2_ykey ()));
  check_bool "keyless view has no coverage" false
    (R.View.covers_all_keys (view_w ()));
  match R.View.key_coverage (view_wy ~r1:r1_wkey ~r2:r2_ykey ()) with
  | Some cover ->
    Alcotest.(check (list int)) "r1 key at output 0" [ 0 ]
      (List.assoc "r1" cover);
    Alcotest.(check (list int)) "r2 key at output 1" [ 1 ]
      (List.assoc "r2" cover)
  | None -> Alcotest.fail "expected coverage"

let view_natural_join_cond () =
  let v = view_w3 () in
  (* r1.X = r2.X and r2.Y = r3.Y: exactly two equi-join conjuncts. *)
  check_int "two join conjuncts" 2
    (List.length (R.Predicate.conjuncts v.R.View.cond))

let suite =
  [
    Alcotest.test_case "value ordering" `Quick value_order;
    Alcotest.test_case "value predicate comparison" `Quick
      value_predicate_compare;
    Alcotest.test_case "value byte sizes" `Quick value_bytes;
    Alcotest.test_case "value type names" `Quick value_types;
    Alcotest.test_case "tuple basics" `Quick tuple_basics;
    Alcotest.test_case "tuple ordering" `Quick tuple_order;
    Alcotest.test_case "attribute parsing" `Quick attr_parsing;
    Alcotest.test_case "attribute matching" `Quick attr_matching;
    Alcotest.test_case "schema validation" `Quick schema_validation;
    Alcotest.test_case "schema lookup" `Quick schema_lookup;
    Alcotest.test_case "schema arity check" `Quick schema_arity_check;
    Alcotest.test_case "predicate evaluation" `Quick pred_eval;
    Alcotest.test_case "predicate conjuncts" `Quick pred_conjuncts;
    Alcotest.test_case "predicate attributes" `Quick pred_attrs;
    Alcotest.test_case "update signs" `Quick update_signs;
    Alcotest.test_case "db apply" `Quick db_apply;
    Alcotest.test_case "db strict delete" `Quick db_strict_delete;
    Alcotest.test_case "db duplicate tuples" `Quick db_duplicates;
    Alcotest.test_case "db unknown relation" `Quick db_unknown_relation;
    Alcotest.test_case "view attribute resolution" `Quick view_resolution;
    Alcotest.test_case "view ambiguity rejected" `Quick view_ambiguity;
    Alcotest.test_case "view duplicate relations rejected" `Quick
      view_duplicate_relations;
    Alcotest.test_case "view key coverage" `Quick view_key_coverage;
    Alcotest.test_case "natural join condition" `Quick view_natural_join_cond;
  ]
