(* Property tests over randomly generated VIEW DEFINITIONS — random
   subsets of base relations, random projections and random conditions —
   not just the fixed chain view. This is the strongest executable form of
   Theorem B.1: for arbitrary SPJ views, arbitrary applicable update
   streams and arbitrary interleavings, ECA is strongly consistent and
   ends at the true view. *)

open Helpers
module R = Relational

(* ------------------------------------------------------------------ *)
(* Random view generator                                               *)
(* ------------------------------------------------------------------ *)

let schemas = [| r1; r2; r3 |]

let qualified_cols (s : R.Schema.t) =
  List.map (fun c -> R.Attr.qualified s.R.Schema.name c) (R.Schema.attr_names s)

let view_gen =
  QCheck.Gen.(
    (* pick a non-empty subset of the three relations, in order *)
    let* mask = int_range 1 7 in
    let sources =
      List.filteri (fun i _ -> mask land (1 lsl i) <> 0)
        (Array.to_list schemas)
    in
    let cols = List.concat_map qualified_cols sources in
    (* random non-empty projection *)
    let* proj_mask = int_range 1 ((1 lsl List.length cols) - 1) in
    let proj =
      List.filteri (fun i _ -> proj_mask land (1 lsl i) <> 0) cols
    in
    (* random condition: 0-2 conjuncts of comparisons between random
       columns / small constants *)
    let operand =
      let* use_col = bool in
      if use_col then
        let* i = int_bound (List.length cols - 1) in
        return (R.Predicate.Col (List.nth cols i))
      else
        let* n = int_bound 4 in
        return (R.Predicate.Const (R.Value.Int n))
    in
    let conjunct =
      let* cmp =
        oneofl
          R.Predicate.[ Eq; Neq; Lt; Le; Gt; Ge ]
      in
      let* a = operand in
      let* b = operand in
      return (R.Predicate.Cmp (cmp, a, b))
    in
    let* n_conj = int_bound 2 in
    let* conjs = list_size (return n_conj) conjunct in
    (* join same-named columns across the chosen relations, plus extras *)
    let view =
      R.View.natural_join ~name:"RV"
        ~extra_cond:(R.Predicate.conj conjs)
        ~proj sources
    in
    return view)

let setup_gen =
  QCheck.Gen.(
    let tuple_gen = map R.Tuple.ints (list_size (return 2) (int_bound 4)) in
    let* view = view_gen in
    let* rows1 = list_size (int_bound 4) tuple_gen in
    let* rows2 = list_size (int_bound 4) tuple_gen in
    let* rows3 = list_size (int_bound 4) tuple_gen in
    let db =
      R.Db.of_list
        [
          (r1, R.Bag.of_list rows1);
          (r2, R.Bag.of_list rows2);
          (r3, R.Bag.of_list rows3);
        ]
    in
    let* n = int_range 1 5 in
    let* raw =
      list_size (return n)
        (pair (oneofl [ "r1"; "r2"; "r3" ]) (pair tuple_gen bool))
    in
    let _, updates =
      List.fold_left
        (fun (db, acc) (rel, (tup, want_insert)) ->
          let u =
            if want_insert || R.Bag.count (R.Db.contents db rel) tup <= 0 then
              R.Update.insert rel tup
            else R.Update.delete rel tup
          in
          (R.Db.apply db u, u :: acc))
        (db, []) raw
    in
    let* seed = int_bound 100_000 in
    return (view, db, List.rev updates, seed))

let arb_setup =
  QCheck.make
    ~print:(fun (view, db, updates, seed) ->
      Format.asprintf "%a@.%a@.updates: %s@.seed=%d" R.View.pp view R.Db.pp db
        (String.concat "; " (List.map R.Update.to_string updates))
        seed)
    setup_gen

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let check_algorithm ~wants_complete algorithm (view, db, updates, seed) =
  let expected = R.Eval.view (R.Db.apply_all db updates) view in
  List.for_all
    (fun schedule ->
      let result =
        run ~algorithm ~schedule ~views:[ view ] ~db ~updates ()
      in
      let report = List.assoc "RV" result.Core.Runner.reports in
      let level =
        if wants_complete then report.Core.Consistency.complete
        else report.Core.Consistency.strongly_consistent
      in
      level
      && R.Bag.equal expected (List.assoc "RV" result.Core.Runner.final_mvs))
    [
      Core.Scheduler.Best_case;
      Core.Scheduler.Worst_case;
      Core.Scheduler.Random seed;
    ]

let count = 150

let eca_random_views =
  QCheck.Test.make ~name:"ECA strongly consistent on random views" ~count
    arb_setup
    (check_algorithm ~wants_complete:false "eca")

let lca_random_views =
  QCheck.Test.make ~name:"LCA complete on random views" ~count arb_setup
    (check_algorithm ~wants_complete:true "lca")

let sc_random_views =
  QCheck.Test.make ~name:"SC complete on random views" ~count arb_setup
    (check_algorithm ~wants_complete:true "sc")

let rv_random_views =
  QCheck.Test.make ~name:"RV strongly consistent on random views" ~count
    arb_setup
    (check_algorithm ~wants_complete:false "rv")

let ecal_random_views =
  QCheck.Test.make ~name:"ECAL strongly consistent on random views" ~count
    arb_setup
    (check_algorithm ~wants_complete:false "eca-local")

let eca_batched_random_views =
  QCheck.Test.make ~name:"batched ECA correct on random views" ~count:80
    arb_setup (fun (view, db, updates, seed) ->
      let expected = R.Eval.view (R.Db.apply_all db updates) view in
      List.for_all
        (fun batch_size ->
          let result =
            Core.Runner.run ~schedule:(Core.Scheduler.Random seed) ~batch_size
              ~creator:(Core.Registry.creator_exn "eca")
              ~views:[ view ] ~db ~updates ()
          in
          let report = List.assoc "RV" result.Core.Runner.reports in
          report.Core.Consistency.strongly_consistent
          && R.Bag.equal expected (List.assoc "RV" result.Core.Runner.final_mvs))
        [ 2; 4 ])

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      eca_random_views;
      lca_random_views;
      sc_random_views;
      rv_random_views;
      ecal_random_views;
      eca_batched_random_views;
    ]
