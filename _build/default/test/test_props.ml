(* End-to-end property tests: randomized update streams and schedules,
   checked against the Section-3.1 hierarchy. These are the executable
   counterparts of Theorem B.1 (ECA strongly consistent), Appendix C
   (ECAK strongly consistent), and the completeness claims for LCA/SC. *)

open Helpers
module R = Relational

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

(* A random chain-schema instance plus a random applicable update stream
   (inserts and deletes that are valid when executed in order). *)
let chain_setup_gen =
  QCheck.Gen.(
    let tuple_gen = map R.Tuple.ints (list_size (return 2) (int_bound 3)) in
    let* rows1 = list_size (int_bound 4) tuple_gen in
    let* rows2 = list_size (int_bound 4) tuple_gen in
    let* rows3 = list_size (int_bound 4) tuple_gen in
    let db0 =
      R.Db.of_list
        [
          (r1, R.Bag.of_list rows1);
          (r2, R.Bag.of_list rows2);
          (r3, R.Bag.of_list rows3);
        ]
    in
    let* n = int_range 1 6 in
    let* choices =
      list_size (return n) (pair (oneofl [ "r1"; "r2"; "r3" ]) (pair tuple_gen bool))
    in
    let _, updates =
      List.fold_left
        (fun (db, acc) (rel, (tup, want_insert)) ->
          let u =
            if want_insert || R.Bag.count (R.Db.contents db rel) tup <= 0 then
              R.Update.insert rel tup
            else R.Update.delete rel tup
          in
          (R.Db.apply db u, u :: acc))
        (db0, []) choices
    in
    let* seed = int_bound 10_000 in
    return (db0, List.rev updates, seed))

let print_setup (db, updates, seed) =
  Format.asprintf "seed=%d@.%a@.updates: %s" seed R.Db.pp db
    (String.concat "; " (List.map R.Update.to_string updates))

let arb_chain = QCheck.make ~print:print_setup chain_setup_gen

let schedules_of_seed seed =
  [
    Core.Scheduler.Best_case;
    Core.Scheduler.Worst_case;
    Core.Scheduler.Round_robin;
    Core.Scheduler.Random seed;
  ]

let run_chain ~algorithm ~schedule (db, updates, _) =
  run ~algorithm ~schedule ~views:[ view_w3 () ] ~db ~updates ()

let holds_for_all_schedules ~algorithm check (db, updates, seed) =
  List.for_all
    (fun schedule ->
      check (run_chain ~algorithm ~schedule (db, updates, seed)))
    (schedules_of_seed seed)

let strong r = (report r "V").Core.Consistency.strongly_consistent
let complete r = (report r "V").Core.Consistency.complete
let convergent r = (report r "V").Core.Consistency.convergent

let correct_final r (db, updates, _) =
  let expected = R.Eval.view (R.Db.apply_all db updates) (view_w3 ()) in
  R.Bag.equal expected (final_mv r "V")

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let count = 120

let eca_strongly_consistent =
  QCheck.Test.make ~name:"ECA strongly consistent on random runs" ~count
    arb_chain (fun setup ->
      holds_for_all_schedules ~algorithm:"eca"
        (fun r -> strong r && correct_final r setup)
        setup)

let lca_complete =
  QCheck.Test.make ~name:"LCA complete on random runs" ~count arb_chain
    (fun setup ->
      holds_for_all_schedules ~algorithm:"lca"
        (fun r -> complete r && correct_final r setup)
        setup)

let sc_complete =
  QCheck.Test.make ~name:"SC complete on random runs" ~count arb_chain
    (fun setup ->
      holds_for_all_schedules ~algorithm:"sc"
        (fun r -> complete r && correct_final r setup)
        setup)

let rv_strongly_consistent =
  QCheck.Test.make ~name:"RV strongly consistent on random runs" ~count
    arb_chain (fun setup ->
      holds_for_all_schedules ~algorithm:"rv"
        (fun r -> strong r && correct_final r setup)
        setup)

let ecal_strongly_consistent =
  QCheck.Test.make ~name:"ECAL strongly consistent on random runs" ~count
    arb_chain (fun setup ->
      holds_for_all_schedules ~algorithm:"eca-local"
        (fun r -> strong r && correct_final r setup)
        setup)

let basic_converges_when_drained =
  QCheck.Test.make
    ~name:"Basic is correct when every update drains before the next" ~count
    arb_chain (fun setup ->
      let r = run_chain ~algorithm:"basic" ~schedule:Core.Scheduler.Best_case setup in
      convergent r && correct_final r setup)

(* ECAK over the keyed two-relation scenario: random keyed streams. *)
let keyed_setup_gen =
  QCheck.Gen.(
    let* c = int_range 0 5 in
    let* k = int_range 1 6 in
    let* ins_ratio = oneofl [ 0.5; 1.0 ] in
    let* seed = int_bound 10_000 in
    let spec =
      Workload.Spec.make ~c ~j:2 ~k_updates:k ~insert_ratio:ins_ratio ~seed ()
    in
    return (Workload.Scenarios.keyed spec, seed))

let arb_keyed =
  QCheck.make
    ~print:(fun ({ Workload.Scenarios.updates; _ }, seed) ->
      Printf.sprintf "seed=%d updates=%s" seed
        (String.concat "; " (List.map R.Update.to_string updates)))
    keyed_setup_gen

let ecak_strongly_consistent =
  QCheck.Test.make ~name:"ECAK strongly consistent on keyed runs" ~count
    arb_keyed (fun ({ Workload.Scenarios.db; view; updates }, seed) ->
      List.for_all
        (fun schedule ->
          let r =
            run ~algorithm:"eca-key" ~schedule ~views:[ view ] ~db ~updates ()
          in
          let expected = R.Eval.view (R.Db.apply_all db updates) view in
          (report r "VK").Core.Consistency.strongly_consistent
          && R.Bag.equal expected (final_mv r "VK"))
        (schedules_of_seed seed))

let eca_and_ecak_agree =
  QCheck.Test.make ~name:"ECA and ECAK agree on keyed runs" ~count arb_keyed
    (fun ({ Workload.Scenarios.db; view; updates }, seed) ->
      List.for_all
        (fun schedule ->
          let final algorithm =
            let r = run ~algorithm ~schedule ~views:[ view ] ~db ~updates () in
            final_mv r "VK"
          in
          R.Bag.equal (final "eca") (final "eca-key"))
        (schedules_of_seed seed))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      eca_strongly_consistent;
      lca_complete;
      sc_complete;
      rv_strongly_consistent;
      ecal_strongly_consistent;
      basic_converges_when_drained;
      ecak_strongly_consistent;
      eca_and_ecak_agree;
    ]
