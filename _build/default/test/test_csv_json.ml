(* CSV loading/dumping and the JSON exporter. *)

open Helpers
module R = Relational

let typed_schema =
  R.Schema.make "t"
    [
      { R.Schema.col_name = "A"; col_type = R.Value.Tint };
      { R.Schema.col_name = "B"; col_type = R.Value.Tfloat };
      { R.Schema.col_name = "C"; col_type = R.Value.Tstr };
      { R.Schema.col_name = "D"; col_type = R.Value.Tbool };
    ]

let csv_roundtrip () =
  let b =
    R.Bag.of_list
      [
        R.Tuple.of_list
          [ Int 1; Float 2.5; Str "plain"; Bool true ];
        R.Tuple.of_list
          [ Int (-3); Float 0.25; Str "with,comma"; Bool false ];
        R.Tuple.of_list
          [ Int 4; Float 1.0; Str "with \"quotes\""; Bool true ];
      ]
  in
  let text = R.Csv.to_string typed_schema b in
  check_bag "roundtrip" b (R.Csv.parse typed_schema text)

let csv_duplicates_kept () =
  let text = "1,1.0,x,true\n1,1.0,x,true\n" in
  let b = R.Csv.parse typed_schema text in
  check_int "two copies" 2
    (R.Bag.count b
       (R.Tuple.of_list [ Int 1; Float 1.0; Str "x"; Bool true ]))

let csv_header_skipped () =
  let text = "A,B,C,D\n7,1.5,y,false\n" in
  let b = R.Csv.parse ~header:true typed_schema text in
  check_int "one row" 1 (R.Bag.net_cardinality b)

let csv_field_splitting () =
  Alcotest.(check (list string))
    "quoted fields"
    [ "a"; "b,c"; "d\"e"; "" ]
    (R.Csv.split_record {|a,"b,c","d""e",|})

let csv_errors () =
  let fails text =
    match R.Csv.parse typed_schema text with
    | exception R.Csv.Csv_error _ -> ()
    | _ -> Alcotest.failf "expected Csv_error for %S" text
  in
  fails "1,2.0,x\n" (* arity *);
  fails "nope,2.0,x,true\n" (* type *);
  fails "1,2.0,\"x,true\n" (* unterminated quote *);
  match R.Csv.to_string typed_schema (R.Bag.singleton ~count:(-1)
    (R.Tuple.of_list [ Int 1; Float 1.0; Str "x"; Bool true ])) with
  | exception R.Csv.Csv_error _ -> ()
  | _ -> Alcotest.fail "expected Csv_error on negative counts"

let csv_crlf () =
  let text = "1,1.0,x,true\r\n2,2.0,y,false\r\n" in
  check_int "two rows" 2
    (R.Bag.net_cardinality (R.Csv.parse typed_schema text))

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_escaping () =
  Alcotest.(check string)
    "escapes" {|"a\"b\\c\nd"|}
    (Core.Json_export.str "a\"b\\c\nd")

let json_values () =
  Alcotest.(check string) "int" "42" (Core.Json_export.value (Int 42));
  Alcotest.(check string) "bool" "true" (Core.Json_export.value (Bool true));
  Alcotest.(check string) "string" {|"hi"|} (Core.Json_export.value (Str "hi"))

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let json_result_is_valid_enough () =
  (* structural smoke: balanced braces/brackets and the expected keys *)
  let db = db_of [ (r1, [ [ 1; 2 ] ]); (r2, []) ] in
  let result =
    run ~algorithm:"eca" ~views:[ view_w () ] ~db
      ~updates:[ ins "r2" [ 2; 3 ] ] ()
  in
  let json = Core.Json_export.result result in
  let count c =
    String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc) 0 json
  in
  check_int "balanced braces" (count '{') (count '}');
  check_int "balanced brackets" (count '[') (count ']');
  List.iter
    (fun key ->
      check_bool (key ^ " present") true (contains json ("\"" ^ key ^ "\"")))
    [ "metrics"; "views"; "trace"; "report"; "strongest" ]

(* ------------------------------------------------------------------ *)
(* Table rendering                                                     *)
(* ------------------------------------------------------------------ *)

let render_table () =
  let b = R.Bag.add ~count:2 (R.Tuple.ints [ 4 ]) (bag [ [ 1 ] ]) in
  let text = R.Render.table ~columns:[ "W" ] b in
  check_bool "header present" true (contains text "| W |");
  check_bool "count column marks duplicates" true (contains text "x+2");
  let neg = R.Render.table ~columns:[ "W" ] (R.Bag.singleton ~count:(-1) (R.Tuple.ints [ 9 ])) in
  check_bool "negative counts visible" true (contains neg "x-1")

let render_empty () =
  let text = R.Render.view_table (view_w ()) R.Bag.empty in
  check_bool "empty table renders" true (contains text "| W |")

let suite =
  [
    Alcotest.test_case "render table" `Quick render_table;
    Alcotest.test_case "render empty table" `Quick render_empty;
    Alcotest.test_case "csv roundtrip" `Quick csv_roundtrip;
    Alcotest.test_case "csv keeps duplicates" `Quick csv_duplicates_kept;
    Alcotest.test_case "csv header" `Quick csv_header_skipped;
    Alcotest.test_case "csv field splitting" `Quick csv_field_splitting;
    Alcotest.test_case "csv errors" `Quick csv_errors;
    Alcotest.test_case "csv CRLF" `Quick csv_crlf;
    Alcotest.test_case "json escaping" `Quick json_escaping;
    Alcotest.test_case "json values" `Quick json_values;
    Alcotest.test_case "json result shape" `Quick json_result_is_valid_enough;
  ]
