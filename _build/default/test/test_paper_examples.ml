(* Step-by-step reproductions of Examples 1-5 and 7-9 of the paper, run
   through the full simulation stack (source, FIFO network, warehouse)
   under the exact event interleavings the paper describes. *)

open Helpers
module R = Relational

(* Example 1: a single update, drained before anything else happens — the
   basic algorithm is correct and the view gains a duplicate [1]. *)
let example1 () =
  let db = db_of [ (r1, [ [ 1; 2 ] ]); (r2, [ [ 2; 4 ] ]) ] in
  let view = view_w () in
  let result =
    run ~algorithm:"basic" ~schedule:Core.Scheduler.Best_case ~views:[ view ]
      ~db ~updates:[ ins "r2" [ 2; 3 ] ] ()
  in
  check_bag "final view has two copies of [1]"
    (bag [ [ 1 ]; [ 1 ] ])
    (final_mv result "V");
  check_bool "converged" true (report result "V").Core.Consistency.convergent

(* Example 2: the insertion anomaly. Two inserts race the first query; the
   basic algorithm double-counts [4]. *)
let example2_schedule = explicit "AWAWSWSW"

let example2_setup () =
  let db = db_of [ (r1, [ [ 1; 2 ] ]); (r2, []) ] in
  let view = view_w () in
  let updates = [ ins "r2" [ 2; 3 ]; ins "r1" [ 4; 2 ] ] in
  (db, view, updates)

let example2_anomaly () =
  let db, view, updates = example2_setup () in
  let result =
    run ~algorithm:"basic" ~schedule:example2_schedule ~views:[ view ] ~db
      ~updates ()
  in
  check_bag "anomalous final view ([1],[4],[4])"
    (bag [ [ 1 ]; [ 4 ]; [ 4 ] ])
    (final_mv result "V");
  let r = report result "V" in
  check_bool "not convergent" false r.Core.Consistency.convergent;
  check_bool "not weakly consistent" false r.Core.Consistency.weakly_consistent

let example2_eca_fixes_it () =
  let db, view, updates = example2_setup () in
  let result =
    run ~algorithm:"eca" ~schedule:example2_schedule ~views:[ view ] ~db
      ~updates ()
  in
  check_bag "correct final view ([1],[4])"
    (bag [ [ 1 ]; [ 4 ] ])
    (final_mv result "V");
  check_bool "strongly consistent" true
    (report result "V").Core.Consistency.strongly_consistent

(* Example 3: the deletion anomaly. Both base tuples die but the stale
   queries see empty relations, so the basic algorithm keeps [1,3]. *)
let example3_setup () =
  let db = db_of [ (r1, [ [ 1; 2 ] ]); (r2, [ [ 2; 3 ] ]) ] in
  let view = view_wy () in
  let updates = [ del "r1" [ 1; 2 ]; del "r2" [ 2; 3 ] ] in
  (db, view, updates)

let example3_anomaly () =
  let db, view, updates = example3_setup () in
  let result =
    run ~algorithm:"basic" ~schedule:example2_schedule ~views:[ view ] ~db
      ~updates ()
  in
  check_bag "anomalous final view still ([1,3])"
    (bag [ [ 1; 3 ] ])
    (final_mv result "V");
  check_bool "not convergent" false
    (report result "V").Core.Consistency.convergent

let example3_eca_fixes_it () =
  let db, view, updates = example3_setup () in
  let result =
    run ~algorithm:"eca" ~schedule:example2_schedule ~views:[ view ] ~db
      ~updates ()
  in
  check_bag "correct empty view" R.Bag.empty (final_mv result "V");
  check_bool "strongly consistent" true
    (report result "V").Core.Consistency.strongly_consistent

(* Example 4: ECA over three inserts into three relations, all applied at
   the source before any query is answered. *)
let example4 () =
  let db = db_of [ (r1, [ [ 1; 2 ] ]); (r2, []); (r3, []) ] in
  let view = view_w3 () in
  let updates =
    [ ins "r1" [ 4; 2 ]; ins "r3" [ 5; 3 ]; ins "r2" [ 2; 5 ] ]
  in
  let result =
    run ~algorithm:"eca" ~schedule:(explicit "AWAWAWSWSWSW") ~views:[ view ]
      ~db ~updates ()
  in
  check_bag "final view ([1],[4])"
    (bag [ [ 1 ]; [ 4 ] ])
    (final_mv result "V");
  check_bool "strongly consistent" true
    (report result "V").Core.Consistency.strongly_consistent

(* Example 7: same data as Example 4 but A1 arrives before U3. *)
let example7 () =
  let db = db_of [ (r1, [ [ 1; 2 ] ]); (r2, []); (r3, []) ] in
  let view = view_w3 () in
  let updates =
    [ ins "r1" [ 4; 2 ]; ins "r3" [ 5; 3 ]; ins "r2" [ 2; 5 ] ]
  in
  let result =
    run ~algorithm:"eca" ~schedule:(explicit "AWAWSWAWSWSW") ~views:[ view ]
      ~db ~updates ()
  in
  check_bag "final view ([1],[4])"
    (bag [ [ 1 ]; [ 4 ] ])
    (final_mv result "V");
  check_bool "strongly consistent" true
    (report result "V").Core.Consistency.strongly_consistent

(* Example 8: two racing deletions, ECA. *)
let example8 () =
  let db = db_of [ (r1, [ [ 1; 2 ]; [ 4; 2 ] ]); (r2, [ [ 2; 3 ] ]) ] in
  let view = view_w () in
  let updates = [ del "r1" [ 4; 2 ]; del "r2" [ 2; 3 ] ] in
  let result =
    run ~algorithm:"eca" ~schedule:example2_schedule ~views:[ view ] ~db
      ~updates ()
  in
  check_bag "final view empty" R.Bag.empty (final_mv result "V");
  check_bool "strongly consistent" true
    (report result "V").Core.Consistency.strongly_consistent

(* Example 9: a racing delete and insert, ECA. *)
let example9 () =
  let db = db_of [ (r1, [ [ 1; 2 ]; [ 4; 2 ] ]); (r2, []) ] in
  let view = view_w () in
  let updates = [ del "r1" [ 4; 2 ]; ins "r2" [ 2; 3 ] ] in
  let result =
    run ~algorithm:"eca" ~schedule:example2_schedule ~views:[ view ] ~db
      ~updates ()
  in
  check_bag "final view ([1])" (bag [ [ 1 ] ]) (final_mv result "V");
  check_bool "strongly consistent" true
    (report result "V").Core.Consistency.strongly_consistent

(* Example 5: ECAK with W and Y as keys; two inserts and a delete all race
   the queries; the final view is ([3,3],[3,4]). *)
let example5 () =
  let db = db_of [ (r1_wkey, [ [ 1; 2 ] ]); (r2_ykey, [ [ 2; 3 ] ]) ] in
  let view = view_wy ~r1:r1_wkey ~r2:r2_ykey () in
  let updates =
    [ ins "r2" [ 2; 4 ]; ins "r1" [ 3; 2 ]; del "r1" [ 1; 2 ] ]
  in
  let result =
    run ~algorithm:"eca-key" ~schedule:(explicit "AWAWAWSWSW")
      ~views:[ view ] ~db ~updates ()
  in
  check_bag "final view ([3,3],[3,4])"
    (bag [ [ 3; 3 ]; [ 3; 4 ] ])
    (final_mv result "V");
  check_bool "strongly consistent" true
    (report result "V").Core.Consistency.strongly_consistent

(* The same Example 5 run under plain ECA must agree on the final view. *)
let example5_eca_agrees () =
  let db = db_of [ (r1_wkey, [ [ 1; 2 ] ]); (r2_ykey, [ [ 2; 3 ] ]) ] in
  let view = view_wy ~r1:r1_wkey ~r2:r2_ykey () in
  let updates =
    [ ins "r2" [ 2; 4 ]; ins "r1" [ 3; 2 ]; del "r1" [ 1; 2 ] ]
  in
  let result =
    run ~algorithm:"eca" ~schedule:(explicit "AWAWAWSWSWSW") ~views:[ view ]
      ~db ~updates ()
  in
  check_bag "final view ([3,3],[3,4])"
    (bag [ [ 3; 3 ]; [ 3; 4 ] ])
    (final_mv result "V")

let suite =
  [
    Alcotest.test_case "example 1: correct maintenance" `Quick example1;
    Alcotest.test_case "example 2: basic algorithm anomaly" `Quick
      example2_anomaly;
    Alcotest.test_case "example 2: ECA eliminates the anomaly" `Quick
      example2_eca_fixes_it;
    Alcotest.test_case "example 3: deletion anomaly" `Quick example3_anomaly;
    Alcotest.test_case "example 3: ECA eliminates the anomaly" `Quick
      example3_eca_fixes_it;
    Alcotest.test_case "example 4: ECA, three racing inserts" `Quick example4;
    Alcotest.test_case "example 5: ECAK" `Quick example5;
    Alcotest.test_case "example 5: ECA agrees with ECAK" `Quick
      example5_eca_agrees;
    Alcotest.test_case "example 7: ECA, interleaved answer" `Quick example7;
    Alcotest.test_case "example 8: ECA, racing deletions" `Quick example8;
    Alcotest.test_case "example 9: ECA, delete vs insert" `Quick example9;
  ]
