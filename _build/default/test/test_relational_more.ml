(* Second unit pass over the relational substrate: signs, comparison
   operators, bag combinators, view metadata, term accessors — the
   plumbing the first suite did not reach. *)

open Helpers
module R = Relational

(* ------------------------------------------------------------------ *)
(* Signs (the Section 4.1 tables)                                      *)
(* ------------------------------------------------------------------ *)

let sign_tables () =
  let open R.Sign in
  check_bool "+*+ = +" true (equal (mult Pos Pos) Pos);
  check_bool "+*- = -" true (equal (mult Pos Neg) Neg);
  check_bool "-*+ = -" true (equal (mult Neg Pos) Neg);
  check_bool "-*- = +" true (equal (mult Neg Neg) Pos);
  check_bool "negate" true (equal (negate Pos) Neg);
  check_int "to_int +" 1 (to_int Pos);
  check_int "to_int -" (-1) (to_int Neg);
  check_bool "of_int 0 is +" true (equal (of_int 0) Pos);
  check_bool "of_int -3 is -" true (equal (of_int (-3)) Neg);
  Alcotest.(check string) "print" "-" (to_string Neg)

(* ------------------------------------------------------------------ *)
(* Comparison operators                                                *)
(* ------------------------------------------------------------------ *)

let cmp_holds_all () =
  let open R.Predicate in
  List.iter
    (fun (cmp, lt, eq_, gt) ->
      check_bool "lt" lt (cmp_holds cmp (-1));
      check_bool "eq" eq_ (cmp_holds cmp 0);
      check_bool "gt" gt (cmp_holds cmp 1))
    [
      (Eq, false, true, false);
      (Neq, true, false, true);
      (Lt, true, false, false);
      (Le, true, true, false);
      (Gt, false, false, true);
      (Ge, false, true, true);
    ]

let predicate_nesting () =
  let p =
    R.Parser.parse_predicate "NOT (a = 1 AND b = 2) OR (a = 9 AND NOT b = 9)"
  in
  let eval a b =
    R.Predicate.eval
      (fun attr ->
        match attr.R.Attr.name with
        | "a" -> R.Value.Int a
        | _ -> R.Value.Int b)
      p
  in
  check_bool "a=1 b=2 -> NOT(true) OR false = false" false (eval 1 2);
  check_bool "a=1 b=3 -> true" true (eval 1 3);
  check_bool "a=9 b=1 -> second disjunct" true (eval 9 1)

(* ------------------------------------------------------------------ *)
(* Bag combinators                                                     *)
(* ------------------------------------------------------------------ *)

let bag_map_filter () =
  let b = bag [ [ 1 ]; [ 2 ]; [ 2 ] ] in
  let doubled =
    R.Bag.map_tuples
      (fun t ->
        match R.Tuple.get t 0 with
        | R.Value.Int n -> R.Tuple.ints [ 2 * n ]
        | _ -> t)
      b
  in
  check_int "mapped counts preserved" 2 (R.Bag.count doubled (R.Tuple.ints [ 4 ]));
  let evens =
    R.Bag.filter
      (fun t -> match R.Tuple.get t 0 with R.Value.Int n -> n mod 2 = 0 | _ -> false)
      b
  in
  check_bag "filter keeps matching tuples" (bag [ [ 2 ]; [ 2 ] ]) evens

let bag_mem_compare () =
  let a = bag [ [ 1 ] ] and b = bag [ [ 2 ] ] in
  check_bool "mem positive" true (R.Bag.mem (R.Tuple.ints [ 1 ]) a);
  check_bool "mem negative count" true
    (R.Bag.mem (R.Tuple.ints [ 3 ]) (R.Bag.singleton ~count:(-1) (R.Tuple.ints [ 3 ])));
  check_bool "mem absent" false (R.Bag.mem (R.Tuple.ints [ 9 ]) a);
  check_bool "compare total order" true (R.Bag.compare a b <> 0);
  check_int "compare reflexive" 0 (R.Bag.compare a a)

let bag_zero_count_add () =
  check_bool "count 0 adds nothing" true
    (R.Bag.is_empty (R.Bag.add ~count:0 (R.Tuple.ints [ 1 ]) R.Bag.empty));
  check_int "distinct cardinality" 2
    (R.Bag.distinct_cardinality (bag [ [ 1 ]; [ 1 ]; [ 2 ] ]))

let bag_fold_iter () =
  let b = R.Bag.add ~count:(-2) (R.Tuple.ints [ 5 ]) (bag [ [ 1 ] ]) in
  let sum = R.Bag.fold (fun _ n acc -> acc + n) b 0 in
  check_int "fold over net counts" (-1) sum;
  let seen = ref 0 in
  R.Bag.iter (fun _ _ -> incr seen) b;
  check_int "iter visits distinct tuples" 2 !seen

(* ------------------------------------------------------------------ *)
(* Views: metadata                                                     *)
(* ------------------------------------------------------------------ *)

let view_output_names () =
  let v = view_wy () in
  Alcotest.(check (list string)) "unique names unqualified" [ "W"; "Y" ]
    (R.View.output_attr_names v);
  let dup =
    R.View.make ~name:"D"
      ~proj:[ R.Attr.qualified "r1" "X"; R.Attr.qualified "r2" "X" ]
      ~cond:R.Predicate.True [ r1; r2 ]
  in
  Alcotest.(check (list string))
    "duplicates qualified" [ "r1.X"; "r2.X" ]
    (R.View.output_attr_names dup)

let view_positions_and_mentions () =
  let v = view_wy () in
  Alcotest.(check (option int)) "W at 0" (Some 0)
    (R.View.proj_position v (R.Attr.qualified "r1" "W"));
  Alcotest.(check (option int)) "Y at 1" (Some 1)
    (R.View.proj_position v (R.Attr.qualified "r2" "Y"));
  Alcotest.(check (option int)) "X not projected" None
    (R.View.proj_position v (R.Attr.qualified "r1" "X"));
  check_bool "mentions r1" true (R.View.mentions v "r1");
  check_bool "does not mention r3" false (R.View.mentions v "r3");
  check_int "columns of the cross product" 4 (List.length (R.View.columns v))

let view_projection_repeats () =
  (* projecting the same attribute twice is legal SPJ *)
  let v =
    R.View.make ~name:"P"
      ~proj:[ R.Attr.qualified "r1" "W"; R.Attr.qualified "r1" "W" ]
      ~cond:R.Predicate.True [ r1 ]
  in
  let db = db_of [ (r1, [ [ 7; 0 ] ]) ] in
  check_bag "duplicated column" (bag [ [ 7; 7 ] ]) (R.Eval.view db v)

(* ------------------------------------------------------------------ *)
(* Terms                                                               *)
(* ------------------------------------------------------------------ *)

let term_accessors () =
  let t = R.Term.of_view (view_w3 ()) in
  Alcotest.(check (list string)) "base relations" [ "r1"; "r2"; "r3" ]
    (R.Term.base_relations t);
  check_bool "not all literals" false (R.Term.is_all_literals t);
  check_bool "mentions r2 as base" true (R.Term.mentions_base t "r2");
  let t' = Option.get (R.Term.subst t (ins "r2" [ 2; 5 ])) in
  check_bool "r2 no longer base" false (R.Term.mentions_base t' "r2");
  check_bool "byte size shrinks or grows sanely" true (R.Term.byte_size t' > 0);
  Alcotest.(check string) "slot_rel" "r1"
    (R.Term.slot_rel (List.hd t.R.Term.slots))

let term_subst_arity_check () =
  let t = R.Term.of_view (view_w ()) in
  match R.Term.subst t (ins "r2" [ 1 ]) with
  | exception R.Schema.Schema_error _ -> ()
  | _ -> Alcotest.fail "expected arity failure"

(* ------------------------------------------------------------------ *)
(* Printing smoke tests (coverage of the pp functions)                 *)
(* ------------------------------------------------------------------ *)

let pp_smoke () =
  let nonempty s = check_bool s true (String.length s > 0) in
  nonempty (R.Bag.to_string (bag [ [ 1 ] ]));
  nonempty (R.Tuple.to_string (R.Tuple.ints [ 1; 2 ]));
  nonempty (R.Update.to_string (del "r1" [ 1; 2 ]));
  nonempty (R.Schema.to_string r1);
  nonempty (R.View.to_string (view_w3 ()));
  nonempty (R.Term.to_string (R.Term.of_view (view_w ())));
  nonempty (R.Query.to_string (R.Query.of_view (view_w ())));
  nonempty (R.Predicate.to_string (R.Parser.parse_predicate "a = 1 OR NOT b < 2"));
  nonempty (Format.asprintf "%a" R.Db.pp (db_of [ (r1, [ [ 1; 2 ] ]) ]));
  nonempty (Format.asprintf "%a" Costmodel.Params.pp Costmodel.Params.default);
  nonempty (Format.asprintf "%a" Core.Metrics.pp Core.Metrics.zero);
  nonempty (Format.asprintf "%a" Workload.Spec.pp Workload.Spec.default)

let value_hash_consistent () =
  let vs =
    [ R.Value.Int 3; R.Value.Float 1.5; R.Value.Str "x"; R.Value.Bool true ]
  in
  List.iter
    (fun v -> check_int "hash self-consistent" (R.Value.hash v) (R.Value.hash v))
    vs;
  check_bool "tuple hash matches equality" true
    (R.Tuple.hash (R.Tuple.ints [ 1; 2 ]) = R.Tuple.hash (R.Tuple.ints [ 1; 2 ]))

let attr_ordering () =
  check_bool "unqualified before qualified" true
    (R.Attr.compare (R.Attr.unqualified "W") (R.Attr.qualified "r1" "W") <> 0);
  check_int "equal attrs" 0
    (R.Attr.compare (R.Attr.qualified "r1" "W") (R.Attr.of_string "r1.W"))

let suite =
  [
    Alcotest.test_case "sign tables" `Quick sign_tables;
    Alcotest.test_case "comparison operators" `Quick cmp_holds_all;
    Alcotest.test_case "predicate nesting" `Quick predicate_nesting;
    Alcotest.test_case "bag map/filter" `Quick bag_map_filter;
    Alcotest.test_case "bag mem/compare" `Quick bag_mem_compare;
    Alcotest.test_case "bag zero-count add" `Quick bag_zero_count_add;
    Alcotest.test_case "bag fold/iter" `Quick bag_fold_iter;
    Alcotest.test_case "view output names" `Quick view_output_names;
    Alcotest.test_case "view positions and mentions" `Quick
      view_positions_and_mentions;
    Alcotest.test_case "repeated projection" `Quick view_projection_repeats;
    Alcotest.test_case "term accessors" `Quick term_accessors;
    Alcotest.test_case "term subst arity check" `Quick term_subst_arity_check;
    Alcotest.test_case "pp smoke" `Quick pp_smoke;
    Alcotest.test_case "value hashing" `Quick value_hash_consistent;
    Alcotest.test_case "attr ordering" `Quick attr_ordering;
  ]
