test/test_costmodel.ml: Alcotest Costmodel Helpers List
