test/test_faults.ml: Alcotest Core Helpers List Printf QCheck QCheck_alcotest Relational Workload
