test/test_query.ml: Alcotest Format Helpers List QCheck QCheck_alcotest Relational
