test/test_scheduler.ml: Alcotest Core Helpers List Option String
