test/test_bag.ml: Alcotest Helpers List QCheck QCheck_alcotest Relational
