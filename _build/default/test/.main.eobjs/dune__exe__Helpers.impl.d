test/helpers.ml: Alcotest Core List Random Relational Storage String
