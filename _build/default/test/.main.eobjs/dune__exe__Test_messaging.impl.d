test/test_messaging.ml: Alcotest Helpers List Messaging Option Relational Storage
