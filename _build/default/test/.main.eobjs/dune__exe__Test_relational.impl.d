test/test_relational.ml: Alcotest Helpers List Option Relational
