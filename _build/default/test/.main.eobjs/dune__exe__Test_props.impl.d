test/test_props.ml: Core Format Helpers List Printf QCheck QCheck_alcotest Relational String Workload
