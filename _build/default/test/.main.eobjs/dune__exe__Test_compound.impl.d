test/test_compound.ml: Alcotest Core Helpers List Printf QCheck QCheck_alcotest Random Relational
