test/test_paper_examples.ml: Alcotest Core Helpers Relational
