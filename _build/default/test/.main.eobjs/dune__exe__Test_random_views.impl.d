test/test_random_views.ml: Array Core Format Helpers List QCheck QCheck_alcotest Relational String
