test/test_workload.ml: Alcotest Array Core Hashtbl Helpers List Option Relational Storage Workload
