test/test_csv_json.ml: Alcotest Core Helpers List Relational String
