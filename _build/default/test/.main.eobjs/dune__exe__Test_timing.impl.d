test/test_timing.ml: Alcotest Core Helpers List Relational Workload
