test/test_misc_coverage.ml: Alcotest Core Helpers List Relational String
