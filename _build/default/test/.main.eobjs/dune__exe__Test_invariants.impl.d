test/test_invariants.ml: Alcotest Array Char Core Hashtbl List Option Printf QCheck QCheck_alcotest String Unix Workload
