test/test_staleness.ml: Alcotest Core Helpers Relational Workload
