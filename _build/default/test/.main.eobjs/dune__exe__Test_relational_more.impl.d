test/test_relational_more.ml: Alcotest Core Costmodel Format Helpers List Option Relational String Workload
