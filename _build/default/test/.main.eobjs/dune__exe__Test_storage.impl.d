test/test_storage.ml: Alcotest Helpers List Relational Storage Workload
