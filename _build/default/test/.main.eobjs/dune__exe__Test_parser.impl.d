test/test_parser.ml: Alcotest Array Core Helpers List Option QCheck QCheck_alcotest Relational
