test/main.mli:
