test/test_batch.ml: Alcotest Core Helpers List Printf QCheck QCheck_alcotest Relational Workload
