test/test_algorithms.ml: Alcotest Core Helpers List Option Relational Workload
