test/test_eval.ml: Alcotest Format Helpers List Option QCheck QCheck_alcotest Relational String
