test/test_plan_equiv.ml: Alcotest Array Format Helpers List Printf QCheck QCheck_alcotest Relational String Workload
