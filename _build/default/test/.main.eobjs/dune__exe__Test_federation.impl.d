test/test_federation.ml: Alcotest Core Helpers List QCheck QCheck_alcotest Random Relational
