test/test_runner.ml: Alcotest Core Helpers List Messaging Option Relational Source_site Storage
