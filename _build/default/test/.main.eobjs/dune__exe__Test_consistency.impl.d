test/test_consistency.ml: Alcotest Array Core Helpers Int List Printf QCheck QCheck_alcotest Relational String
