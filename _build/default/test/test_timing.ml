(* Maintenance timing (Section 2): immediate vs periodic vs deferred.
   Wrapped algorithms visit a subsequence of the source states, so strong
   consistency must be preserved, messages must drop, and the final view
   must agree with immediate maintenance. *)

open Helpers
module R = Relational

let setup () =
  let { Workload.Scenarios.db; view; updates } =
    Workload.Scenarios.example6
      (Workload.Spec.make ~c:25 ~j:3 ~k_updates:12 ~insert_ratio:0.7 ~seed:21 ())
  in
  (db, view, updates)

let run_timed ~mode ~algorithm ?(schedule = Core.Scheduler.Best_case) () =
  let db, view, updates = setup () in
  let result =
    Core.Runner.run ~schedule
      ~creator:
        (Core.Timing.creator mode (Core.Registry.creator_exn algorithm))
      ~views:[ view ] ~db ~updates ()
  in
  (result, R.Eval.view (R.Db.apply_all db updates) view)

let periodic_correct_and_cheaper () =
  let immediate, truth = run_timed ~mode:Core.Timing.Immediate ~algorithm:"eca" () in
  let periodic, _ = run_timed ~mode:(Core.Timing.Periodic 4) ~algorithm:"eca" () in
  check_bag "periodic final view correct" truth
    (List.assoc "V" periodic.Core.Runner.final_mvs);
  check_bool "periodic strongly consistent" true
    (List.assoc "V" periodic.Core.Runner.reports)
      .Core.Consistency.strongly_consistent;
  check_bool "fewer messages than immediate" true
    (Core.Metrics.messages periodic.Core.Runner.metrics
     < Core.Metrics.messages immediate.Core.Runner.metrics)

let deferred_single_refresh () =
  let deferred, truth = run_timed ~mode:Core.Timing.Deferred ~algorithm:"eca" () in
  check_bag "deferred final view correct" truth
    (List.assoc "V" deferred.Core.Runner.final_mvs);
  check_bool "deferred strongly consistent" true
    (List.assoc "V" deferred.Core.Runner.reports)
      .Core.Consistency.strongly_consistent;
  (* one flush, one combined query, one answer *)
  check_int "single round trip" 2
    (Core.Metrics.messages deferred.Core.Runner.metrics)

let periodic_under_contention () =
  let periodic, truth =
    run_timed ~mode:(Core.Timing.Periodic 3) ~algorithm:"eca"
      ~schedule:Core.Scheduler.Worst_case ()
  in
  check_bag "worst-case periodic is still correct" truth
    (List.assoc "V" periodic.Core.Runner.final_mvs);
  check_bool "strongly consistent" true
    (List.assoc "V" periodic.Core.Runner.reports)
      .Core.Consistency.strongly_consistent

let periodic_wraps_other_algorithms () =
  List.iter
    (fun algorithm ->
      let r, truth = run_timed ~mode:(Core.Timing.Periodic 5) ~algorithm () in
      check_bag (algorithm ^ " periodic correct") truth
        (List.assoc "V" r.Core.Runner.final_mvs))
    [ "lca"; "sc"; "rv" ]

let invalid_period_rejected () =
  match Core.Timing.wrap (Core.Timing.Periodic 0)
          (Core.Registry.creator_exn "eca"
             (Core.Algorithm.Config.make
                ~view:(R.Viewdef.simple (view_w ())) ~init_mv:R.Bag.empty ()))
  with
  | exception Core.Timing.Timing_error _ -> ()
  | _ -> Alcotest.fail "expected Timing_error"

let suite =
  [
    Alcotest.test_case "periodic: correct and cheaper" `Quick
      periodic_correct_and_cheaper;
    Alcotest.test_case "deferred: one refresh at demand" `Quick
      deferred_single_refresh;
    Alcotest.test_case "periodic under contention" `Quick
      periodic_under_contention;
    Alcotest.test_case "periodic wraps other algorithms" `Quick
      periodic_wraps_other_algorithms;
    Alcotest.test_case "invalid period rejected" `Quick
      invalid_period_rejected;
  ]
