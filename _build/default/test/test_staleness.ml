(* The staleness metric: view lag behind the source, the other axis of the
   timing/batching trade-offs. *)

open Helpers
module R = Relational

let setup k =
  let { Workload.Scenarios.db; view; updates } =
    Workload.Scenarios.example6
      (Workload.Spec.make ~c:20 ~j:3 ~k_updates:k ~insert_ratio:0.8 ~seed:31 ())
  in
  (db, view, updates)

let run_lag ?(schedule = Core.Scheduler.Best_case) ?timing ~algorithm k =
  let db, view, updates = setup k in
  let creator = Core.Registry.creator_exn algorithm in
  let creator =
    match timing with
    | Some mode -> Core.Timing.creator mode creator
    | None -> creator
  in
  let result = Core.Runner.run ~schedule ~creator ~views:[ view ] ~db ~updates () in
  Core.Staleness.of_trace result.Core.Runner.trace "V"

let immediate_best_case_is_fresh () =
  let lag = run_lag ~algorithm:"eca" 10 in
  (* every update drains before the next: the view is behind by at most
     the one in-flight update, and converges fresh *)
  check_int "never more than one update behind" 1 lag.Core.Staleness.max_lag;
  check_int "final lag 0" 0 lag.Core.Staleness.final_lag;
  check_int "no unmatched states" 0 lag.Core.Staleness.unmatched

let worst_case_is_stale () =
  let immediate = run_lag ~algorithm:"eca" 10 in
  let worst = run_lag ~schedule:Core.Scheduler.Worst_case ~algorithm:"eca" 10 in
  (* one installation at the very end: lag climbs towards k meanwhile
     (value-equal intermediate states can shave an event or two off) *)
  check_bool "max lag approaches k" true (worst.Core.Staleness.max_lag >= 8);
  check_bool "far more stale than the drained run" true
    (worst.Core.Staleness.mean_lag > immediate.Core.Staleness.mean_lag);
  check_int "still converges fresh" 0 worst.Core.Staleness.final_lag

let sc_is_freshest () =
  let sc = run_lag ~schedule:Core.Scheduler.Round_robin ~algorithm:"sc" 12 in
  let eca = run_lag ~schedule:Core.Scheduler.Round_robin ~algorithm:"eca" 12 in
  check_bool "SC at most one event behind" true
    (sc.Core.Staleness.max_lag <= 1);
  check_bool "SC no less fresh than ECA" true
    (sc.Core.Staleness.mean_lag <= eca.Core.Staleness.mean_lag)

let periodic_increases_lag () =
  let immediate = run_lag ~algorithm:"eca" 12 in
  let periodic =
    run_lag ~algorithm:"eca" ~timing:(Core.Timing.Periodic 4) 12
  in
  check_bool "periodic is more stale on average" true
    (periodic.Core.Staleness.mean_lag > immediate.Core.Staleness.mean_lag);
  check_bool "periodic max lag at least the period" true
    (periodic.Core.Staleness.max_lag >= 4);
  let deferred = run_lag ~algorithm:"eca" ~timing:Core.Timing.Deferred 12 in
  check_bool "deferred is the most stale" true
    (deferred.Core.Staleness.mean_lag >= periodic.Core.Staleness.mean_lag);
  check_int "deferred still converges fresh" 0
    deferred.Core.Staleness.final_lag

let lca_fresh_under_drain () =
  let lag = run_lag ~algorithm:"lca" 10 in
  check_int "at most one update behind" 1 lag.Core.Staleness.max_lag;
  check_int "no unmatched" 0 lag.Core.Staleness.unmatched

let empty_run () =
  let db, view, _ = setup 0 in
  let result =
    Core.Runner.run
      ~creator:(Core.Registry.creator_exn "eca")
      ~views:[ view ] ~db ~updates:[] ()
  in
  let lag = Core.Staleness.of_trace result.Core.Runner.trace "V" in
  check_int "no samples" 0 lag.Core.Staleness.samples;
  check_int "fresh" 0 lag.Core.Staleness.final_lag

let suite =
  [
    Alcotest.test_case "immediate best case is fresh" `Quick
      immediate_best_case_is_fresh;
    Alcotest.test_case "worst case converges fresh" `Quick worst_case_is_stale;
    Alcotest.test_case "SC is the freshest" `Quick sc_is_freshest;
    Alcotest.test_case "periodic refresh increases lag" `Quick
      periodic_increases_lag;
    Alcotest.test_case "LCA fresh under drain" `Quick lca_fresh_under_drain;
    Alcotest.test_case "empty run" `Quick empty_run;
  ]
