(* Workload generation: determinism, statistical targets, and update
   applicability. *)

open Helpers
module R = Relational
module W = Workload

let spec = W.Spec.make ~c:100 ~j:4 ~k_updates:30 ~seed:5 ()

let deterministic () =
  let a = W.Scenarios.example6 spec and b = W.Scenarios.example6 spec in
  check_bool "same db for same seed" true (R.Db.equal a.W.Scenarios.db b.W.Scenarios.db);
  check_bool "same updates for same seed" true
    (List.for_all2 R.Update.equal a.W.Scenarios.updates b.W.Scenarios.updates);
  let c = W.Scenarios.example6 (W.Spec.make ~c:100 ~j:4 ~k_updates:30 ~seed:6 ()) in
  check_bool "different seed differs" false
    (R.Db.equal a.W.Scenarios.db c.W.Scenarios.db)

let cardinalities () =
  let { W.Scenarios.db; _ } = W.Scenarios.example6 spec in
  List.iter
    (fun rel -> check_int (rel ^ " has C tuples") 100 (Storage.Stats.cardinality db rel))
    [ "r1"; "r2"; "r3" ]

let join_factor_target () =
  let { W.Scenarios.db; _ } = W.Scenarios.example6 spec in
  let j12 = Storage.Stats.join_factor db "r2" "X" in
  let j23 = Storage.Stats.join_factor db "r3" "Y" in
  check_bool "J(r2,X) near 4" true (j12 > 2.5 && j12 < 6.0);
  check_bool "J(r3,Y) near 4" true (j23 > 2.5 && j23 < 6.0)

let updates_apply_cleanly () =
  let { W.Scenarios.db; updates; _ } =
    W.Scenarios.example6
      (W.Spec.make ~c:20 ~j:4 ~k_updates:40 ~insert_ratio:0.5 ~seed:9 ())
  in
  (* strict application must succeed: deletes always target live tuples *)
  ignore (R.Db.apply_all db updates)

let round_robin_relations () =
  let { W.Scenarios.updates; _ } =
    W.Scenarios.example6 (W.Spec.make ~c:10 ~j:2 ~k_updates:6 ~seed:1 ())
  in
  Alcotest.(check (list string))
    "relations cycle"
    [ "r1"; "r2"; "r3"; "r1"; "r2"; "r3" ]
    (List.map (fun (u : R.Update.t) -> u.R.Update.rel) updates)

let keyed_scenario_covers_keys () =
  let { W.Scenarios.view; db; updates } = W.Scenarios.keyed spec in
  check_bool "view covers all keys" true (R.View.covers_all_keys view);
  ignore (R.Db.apply_all db updates);
  (* keys are genuinely unique in the generated data *)
  let ws = Hashtbl.create 64 in
  R.Bag.iter
    (fun t n ->
      let w = R.Tuple.get t 0 in
      check_int "single copy" 1 n;
      check_bool "unique W" false (Hashtbl.mem ws w);
      Hashtbl.replace ws w ())
    (R.Db.contents db "r1")

let keyed_inserts_use_fresh_keys () =
  let spec = W.Spec.make ~c:5 ~j:2 ~k_updates:10 ~seed:3 () in
  let { W.Scenarios.db; updates; _ } = W.Scenarios.keyed spec in
  let final = R.Db.apply_all db updates in
  check_bool "r1 keys still unique" true
    (R.Bag.is_set (R.Db.contents final "r1"))

let spec_validation () =
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")
    [
      (fun () -> W.Spec.make ~c:(-1) ());
      (fun () -> W.Spec.make ~j:0 ());
      (fun () -> W.Spec.make ~insert_ratio:2.0 ());
      (fun () -> W.Spec.make ~value_range:1 ());
    ]

let scenario_catalogs () =
  let c1 = W.Scenarios.catalog_scenario1 () in
  let c2 = W.Scenarios.catalog_scenario2 () in
  check_bool "scenario 1 has indexes" true (List.length c1.Storage.Catalog.indexes = 4);
  check_bool "scenario 2 has none" true (c2.Storage.Catalog.indexes = []);
  check_bool "modes differ" true (c1.Storage.Catalog.mode <> c2.Storage.Catalog.mode)

let pick_existing_uniformity () =
  let { W.Scenarios.db; _ } =
    W.Scenarios.example6 (W.Spec.make ~c:10 ~j:2 ~seed:2 ())
  in
  let st = rng 7 in
  for _ = 1 to 50 do
    match W.Generator.pick_existing st db "r1" with
    | Some t -> check_bool "picked a live tuple" true
                  (R.Bag.mem t (R.Db.contents db "r1"))
    | None -> Alcotest.fail "r1 is non-empty"
  done;
  let empty_db = db_of [ (r1, []) ] in
  check_bool "empty relation yields None" true
    (Option.is_none (W.Generator.pick_existing st empty_db "r1"))

let zipf_sampling () =
  let st = rng 3 in
  let n = 10 in
  let counts = Array.make n 0 in
  for _ = 1 to 5000 do
    let v = W.Generator.zipf_below ~skew:1.2 st n in
    check_bool "in range" true (v >= 0 && v < n);
    counts.(v) <- counts.(v) + 1
  done;
  check_bool "rank 0 dominates rank 9" true (counts.(0) > 3 * counts.(9));
  check_bool "monotone-ish head" true (counts.(0) > counts.(4));
  (* zero skew behaves uniformly *)
  let st = rng 4 in
  let u = Array.make n 0 in
  for _ = 1 to 5000 do
    let v = W.Generator.zipf_below ~skew:0.0 st n in
    u.(v) <- u.(v) + 1
  done;
  Array.iter (fun c -> check_bool "roughly uniform" true (c > 300 && c < 700)) u;
  check_int "degenerate domain" 0 (W.Generator.zipf_below ~skew:1.0 st 0)

let skewed_workloads_still_run () =
  let spec = W.Spec.make ~c:40 ~j:4 ~k_updates:10 ~skew:1.5 ~seed:6 () in
  let { W.Scenarios.db; view; updates } = W.Scenarios.example6 spec in
  let r =
    Core.Runner.run ~schedule:Core.Scheduler.Worst_case
      ~creator:(Core.Registry.creator_exn "eca")
      ~views:[ view ] ~db ~updates ()
  in
  check_bool "strongly consistent under skew" true
    (List.assoc "V" r.Core.Runner.reports).Core.Consistency.strongly_consistent;
  (* skew must raise the hottest value's fan-out above the uniform J *)
  let hottest rel attr =
    let schema = R.Db.schema db rel in
    let i = Option.get (R.Schema.column_index schema attr) in
    let tbl = Hashtbl.create 16 in
    R.Bag.iter
      (fun t n ->
        let v = R.Tuple.get t i in
        Hashtbl.replace tbl v (n + Option.value (Hashtbl.find_opt tbl v) ~default:0))
      (R.Db.contents db rel);
    Hashtbl.fold (fun _ n acc -> max n acc) tbl 0
  in
  check_bool "hot value exceeds uniform J" true (hottest "r2" "X" > 4);
  (match W.Spec.make ~skew:(-1.0) () with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "negative skew accepted")

let suite =
  [
    Alcotest.test_case "zipf sampling" `Quick zipf_sampling;
    Alcotest.test_case "skewed workloads run correctly" `Quick
      skewed_workloads_still_run;
    Alcotest.test_case "deterministic generation" `Quick deterministic;
    Alcotest.test_case "cardinalities" `Quick cardinalities;
    Alcotest.test_case "join-factor target" `Quick join_factor_target;
    Alcotest.test_case "updates apply cleanly" `Quick updates_apply_cleanly;
    Alcotest.test_case "round-robin relations" `Quick round_robin_relations;
    Alcotest.test_case "keyed scenario covers keys" `Quick
      keyed_scenario_covers_keys;
    Alcotest.test_case "keyed inserts use fresh keys" `Quick
      keyed_inserts_use_fresh_keys;
    Alcotest.test_case "spec validation" `Quick spec_validation;
    Alcotest.test_case "scenario catalogs" `Quick scenario_catalogs;
    Alcotest.test_case "pick_existing" `Quick pick_existing_uniformity;
  ]
