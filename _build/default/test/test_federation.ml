(* Multiple autonomous sources, one warehouse (Section 7's single-source
   views over a federation). *)

open Helpers
module R = Relational
module F = Core.Federation

(* Two sources: "hr" owns emp/dept, "sales" owns ord/cust. *)
let emp = R.Schema.of_names "emp" [ "EID"; "DID" ]
let dept = R.Schema.of_names "dept" [ "DID"; "BUDGET" ]
let ord = R.Schema.of_names "ord" [ "OID"; "CID" ]
let cust = R.Schema.of_names "cust" [ "CID"; "SEGMENT" ]

let hr_db () =
  R.Db.of_list
    [
      (emp, bag [ [ 1; 10 ]; [ 2; 20 ] ]);
      (dept, bag [ [ 10; 500 ]; [ 20; 900 ] ]);
    ]

let sales_db () =
  R.Db.of_list
    [ (ord, bag [ [ 100; 7 ] ]); (cust, bag [ [ 7; 1 ]; [ 8; 2 ] ]) ]

let v_hr =
  R.View.natural_join ~name:"emp_budget"
    ~proj:[ R.Attr.unqualified "EID"; R.Attr.unqualified "BUDGET" ]
    [ emp; dept ]

let v_sales =
  R.View.natural_join ~name:"ord_segment"
    ~proj:[ R.Attr.unqualified "OID"; R.Attr.unqualified "SEGMENT" ]
    [ ord; cust ]

let sources () =
  [ ("hr", None, hr_db ()); ("sales", None, sales_db ()) ]

let updates =
  [
    ins "emp" [ 3; 20 ];
    ins "ord" [ 101; 8 ];
    del "emp" [ 1; 10 ];
    ins "cust" [ 9; 3 ];
    del "ord" [ 100; 7 ];
    ins "dept" [ 30; 100 ];
  ]

let run ?policy algorithm =
  F.run ?policy
    ~creator:(Core.Registry.creator_exn algorithm)
    ~sources:(sources ()) ~views:[ v_hr; v_sales ] ~updates ()

let eca_per_view_is_enough () =
  List.iter
    (fun policy ->
      let r = run ~policy "eca" in
      List.iter
        (fun (name, report) ->
          check_bool
            (name ^ " strongly consistent")
            true report.Core.Consistency.strongly_consistent;
          check_bag (name ^ " matches its source")
            (List.assoc name r.F.final_source_views)
            (List.assoc name r.F.final_mvs))
        r.F.reports)
    [ F.Drain_first; F.Updates_first; F.Random 5; F.Random 77 ]

let updates_route_to_owners () =
  let r = run ~policy:F.Updates_first "eca" in
  (* every update triggered exactly one query on its owning source's view *)
  check_int "six updates" 6 r.F.metrics.Core.Metrics.updates;
  check_int "one query per update" 6 r.F.metrics.Core.Metrics.queries_sent

let basic_still_anomalous_across_sources () =
  (* decoupling anomalies are per source; the conventional algorithm still
     breaks when updates race within one source *)
  let anomaly_updates = [ ins "cust" [ 7; 9 ]; ins "ord" [ 102; 7 ] ] in
  let r =
    F.run ~policy:F.Updates_first
      ~creator:(Core.Registry.creator_exn "basic")
      ~sources:(sources ()) ~views:[ v_sales ] ~updates:anomaly_updates ()
  in
  check_bool "basic fails in a federation too" false
    (List.assoc "ord_segment" r.F.reports).Core.Consistency.weakly_consistent

let cross_source_views_rejected () =
  let v_bad =
    R.View.make ~name:"bad"
      ~proj:[ R.Attr.qualified "emp" "EID"; R.Attr.qualified "cust" "CID" ]
      ~cond:R.Predicate.True [ emp; cust ]
  in
  match
    F.run
      ~creator:(Core.Registry.creator_exn "eca")
      ~sources:(sources ()) ~views:[ v_bad ] ~updates:[] ()
  with
  | exception F.Federation_error _ -> ()
  | _ -> Alcotest.fail "expected Federation_error"

(* The opt-in naive cross-source strategy: a view joining HR employees to
   sales customers on matching ids, spanning both sources. *)
let v_cross =
  R.View.make ~name:"cross"
    ~proj:[ R.Attr.qualified "emp" "EID"; R.Attr.qualified "cust" "SEGMENT" ]
    ~cond:(R.Predicate.eq_attrs "emp.EID" "cust.CID")
    [ emp; cust ]

let run_cross ~policy updates =
  F.run ~policy ~allow_cross_source:true
    ~creator:(Core.Registry.creator_exn "fetch-join")
    ~sources:(sources ()) ~views:[ v_cross ] ~updates ()

let fetch_join_converges_when_drained () =
  let updates =
    [ ins "emp" [ 7; 10 ]; ins "cust" [ 2; 9 ]; del "emp" [ 7; 10 ] ]
  in
  let r = run_cross ~policy:F.Drain_first updates in
  check_bool "convergent when every update drains" true
    (List.assoc "cross" r.F.reports).Core.Consistency.convergent;
  check_bag "matches the merged global state"
    (List.assoc "cross" r.F.final_source_views)
    (List.assoc "cross" r.F.final_mvs)

let fetch_join_anomalous_under_races () =
  (* insert emp[8,_] and cust[8,_] concurrently: each update's fetch of
     the OTHER source's relation is answered after both inserts, so both
     deltas observe the join partner and the tuple is double-counted. *)
  let updates = [ ins "emp" [ 8; 10 ]; ins "cust" [ 8; 1 ] ] in
  let r = run_cross ~policy:F.Updates_first updates in
  let report = List.assoc "cross" r.F.reports in
  check_bool "not even weakly consistent" false
    report.Core.Consistency.weakly_consistent;
  check_bag "the racing tuple is double-counted"
    (R.Bag.add ~count:2 (R.Tuple.ints [ 8; 1 ])
       (bag [ [ 8; 2 ] ]))
    (List.assoc "cross" r.F.final_mvs)

let duplicate_ownership_rejected () =
  match
    F.run
      ~creator:(Core.Registry.creator_exn "eca")
      ~sources:[ ("a", None, hr_db ()); ("b", None, hr_db ()) ]
      ~views:[ v_hr ] ~updates:[] ()
  with
  | exception F.Federation_error _ -> ()
  | _ -> Alcotest.fail "expected Federation_error"

let federation_prop =
  QCheck.Test.make ~name:"random federated streams stay strongly consistent"
    ~count:60
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000))
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let pick l = List.nth l (Random.State.int st (List.length l)) in
      (* random applicable inserts over both sources *)
      let updates =
        List.init 10 (fun i ->
            match pick [ "emp"; "dept"; "ord"; "cust" ] with
            | "emp" -> ins "emp" [ 100 + i; pick [ 10; 20 ] ]
            | "dept" -> ins "dept" [ 100 + i; i ]
            | "ord" -> ins "ord" [ 200 + i; pick [ 7; 8 ] ]
            | _ -> ins "cust" [ 300 + i; i ])
      in
      let r =
        F.run ~policy:(F.Random seed)
          ~creator:(Core.Registry.creator_exn "eca")
          ~sources:(sources ()) ~views:[ v_hr; v_sales ] ~updates ()
      in
      List.for_all
        (fun (name, (report : Core.Consistency.report)) ->
          report.Core.Consistency.strongly_consistent
          && R.Bag.equal
               (List.assoc name r.F.final_mvs)
               (List.assoc name r.F.final_source_views))
        r.F.reports)

let deferred_timing_flushes_at_quiescence () =
  (* the federation's quiesce probe must flush warehouse-side buffers,
     exactly like the single-source runner *)
  let r =
    F.run ~policy:F.Updates_first
      ~creator:
        (Core.Timing.creator Core.Timing.Deferred
           (Core.Registry.creator_exn "eca"))
      ~sources:(sources ()) ~views:[ v_hr; v_sales ] ~updates ()
  in
  List.iter
    (fun (name, (report : Core.Consistency.report)) ->
      check_bool (name ^ " converges via the probe") true
        report.Core.Consistency.convergent;
      check_bag (name ^ " matches its source")
        (List.assoc name r.F.final_source_views)
        (List.assoc name r.F.final_mvs))
    r.F.reports

let suite =
  [
    Alcotest.test_case "deferred timing flushes at quiescence" `Quick
      deferred_timing_flushes_at_quiescence;
    Alcotest.test_case "ECA per view suffices across sources" `Quick
      eca_per_view_is_enough;
    Alcotest.test_case "updates route to their owners" `Quick
      updates_route_to_owners;
    Alcotest.test_case "basic is still anomalous" `Quick
      basic_still_anomalous_across_sources;
    Alcotest.test_case "cross-source views rejected" `Quick
      cross_source_views_rejected;
    Alcotest.test_case "fetch-join converges when drained" `Quick
      fetch_join_converges_when_drained;
    Alcotest.test_case "fetch-join anomalous under races" `Quick
      fetch_join_anomalous_under_races;
    Alcotest.test_case "duplicate ownership rejected" `Quick
      duplicate_ownership_rejected;
  ]
  @ [ QCheck_alcotest.to_alcotest federation_prop ]
