(* The logical evaluator: unit cases over the paper's examples plus a
   qcheck equivalence against a brute-force reference evaluator (plain
   cross product + filter + project), which exercises the hash-join paths
   against ground truth. *)

open Helpers
module R = Relational

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let eval_view_simple () =
  let db = db_of [ (r1, [ [ 1; 2 ] ]); (r2, [ [ 2; 4 ] ]) ] in
  check_bag "π_W (r1 ⋈ r2)" (bag [ [ 1 ] ]) (R.Eval.view db (view_w ()))

let eval_view_duplicates () =
  let db = db_of [ (r1, [ [ 1; 2 ] ]); (r2, [ [ 2; 4 ]; [ 2; 3 ] ]) ] in
  check_bag "projection keeps duplicates"
    (bag [ [ 1 ]; [ 1 ] ])
    (R.Eval.view db (view_w ()))

let eval_three_way_join () =
  let db =
    db_of
      [
        (r1, [ [ 1; 2 ]; [ 4; 2 ] ]);
        (r2, [ [ 2; 5 ] ]);
        (r3, [ [ 5; 3 ] ]);
      ]
  in
  check_bag "π_W (r1 ⋈ r2 ⋈ r3)"
    (bag [ [ 1 ]; [ 4 ] ])
    (R.Eval.view db (view_w3 ()))

let eval_condition () =
  let v =
    R.View.natural_join ~name:"V"
      ~extra_cond:(R.Parser.parse_predicate "r1.W > r2.Y")
      ~proj:[ R.Attr.unqualified "W"; R.Attr.unqualified "Y" ]
      [ r1; r2 ]
  in
  let db = db_of [ (r1, [ [ 9; 2 ]; [ 1; 2 ] ]); (r2, [ [ 2; 4 ] ]) ] in
  check_bag "residual condition filters"
    (bag [ [ 9; 4 ] ])
    (R.Eval.view db v)

let eval_signed_literal () =
  let db = db_of [ (r1, []); (r2, [ [ 2; 3 ] ]) ] in
  let q = R.Query.view_delta (view_w ()) (del "r1" [ 1; 2 ]) in
  let a = R.Eval.query db q in
  check_int "minus sign carries through the join" (-1)
    (R.Bag.count a (R.Tuple.ints [ 1 ]))

let eval_negative_base_counts () =
  (* A base bag with a negative count behaves like a deleted tuple. *)
  let contents = R.Bag.add ~count:(-1) (R.Tuple.ints [ 1; 2 ]) R.Bag.empty in
  let db =
    R.Db.empty
    |> fun db -> R.Db.add_relation db r1
    |> fun db -> R.Db.add_relation ~contents:(bag [ [ 2; 3 ] ]) db r2
  in
  (* Negative base relations are rejected at load; emulate via a literal
     term instead. *)
  ignore contents;
  let term =
    {
      R.Term.sign = R.Sign.Pos;
      proj = [ R.Attr.qualified "r1" "W" ];
      cond = R.Predicate.eq_attrs "r1.X" "r2.X";
      slots =
        [
          R.Term.Lit (r1, R.Sign.Neg, R.Tuple.ints [ 1; 2 ]);
          R.Term.Base r2;
        ];
    }
  in
  check_int "literal with minus sign yields negative result" (-1)
    (R.Bag.count (R.Eval.term db term) (R.Tuple.ints [ 1 ]))

let eval_term_sign () =
  let db = db_of [ (r1, [ [ 1; 2 ] ]); (r2, [ [ 2; 3 ] ]) ] in
  let t = R.Term.of_view (view_w ()) in
  let a = R.Eval.term db (R.Term.negate t) in
  check_int "negated term negates its result" (-1)
    (R.Bag.count a (R.Tuple.ints [ 1 ]))

let eval_query_sums_terms () =
  let db = db_of [ (r1, [ [ 1; 2 ] ]); (r2, [ [ 2; 3 ] ]) ] in
  let t = R.Term.of_view (view_w ()) in
  let q = [ t; R.Term.negate t ] in
  check_bag "T + (-T) = 0" R.Bag.empty (R.Eval.query db q)

let eval_constant_condition () =
  let v =
    R.View.natural_join ~name:"V"
      ~extra_cond:(R.Parser.parse_predicate "1 > 2")
      ~proj:[ R.Attr.unqualified "W" ]
      [ r1; r2 ]
  in
  let db = db_of [ (r1, [ [ 1; 2 ] ]); (r2, [ [ 2; 3 ] ]) ] in
  check_bag "statically false condition" R.Bag.empty (R.Eval.view db v)

let eval_cross_product () =
  (* No join condition at all: a plain cross product. *)
  let v =
    R.View.make ~name:"X"
      ~proj:[ R.Attr.qualified "r1" "W"; R.Attr.qualified "r2" "Y" ]
      ~cond:R.Predicate.True [ r1; r2 ]
  in
  let db = db_of [ (r1, [ [ 1; 2 ]; [ 4; 5 ] ]); (r2, [ [ 7; 8 ] ]) ] in
  check_bag "cross product"
    (bag [ [ 1; 8 ]; [ 4; 8 ] ])
    (R.Eval.view db v)

let eval_literal_term_requires_no_base () =
  let t = R.Term.of_view (view_w ()) in
  Alcotest.check_raises "literal_term rejects base slots"
    (R.Eval.Eval_error "literal_term: term still references base relations")
    (fun () -> ignore (R.Eval.literal_term t))

(* ------------------------------------------------------------------ *)
(* Reference-evaluator equivalence                                     *)
(* ------------------------------------------------------------------ *)

(* Brute force: expand every slot into signed copies, take the full cross
   product, filter with Predicate.eval over an association environment,
   and project. No hash joins, no short cuts. *)
let reference_term db (t : R.Term.t) =
  let slot_rows slot =
    let schema = R.Term.slot_schema slot in
    let contents =
      match slot with
      | R.Term.Base s -> R.Db.contents db s.R.Schema.name
      | R.Term.Lit (_, g, tup) -> R.Bag.singleton ~count:(R.Sign.to_int g) tup
    in
    R.Bag.fold
      (fun tup n acc -> (schema, tup, n) :: acc)
      contents []
  in
  let rec cross = function
    | [] -> [ ([], 1) ]
    | slot :: rest ->
      let tails = cross rest in
      List.concat_map
        (fun (schema, tup, n) ->
          List.map
            (fun (env, c) -> ((schema, tup) :: env, n * c))
            tails)
        (slot_rows slot)
  in
  let lookup env (a : R.Attr.t) =
    let candidates =
      List.filter_map
        (fun ((s : R.Schema.t), tup) ->
          match a.R.Attr.rel with
          | Some rel when not (String.equal rel s.R.Schema.name) -> None
          | _ ->
            Option.map (fun i -> R.Tuple.get tup i)
              (R.Schema.column_index s a.R.Attr.name))
        env
    in
    match candidates with
    | [ v ] -> v
    | _ -> Alcotest.failf "reference lookup: %s" (R.Attr.to_string a)
  in
  List.fold_left
    (fun acc (env, count) ->
      if R.Predicate.eval (lookup env) t.R.Term.cond then
        let out = R.Tuple.of_list (List.map (lookup env) t.R.Term.proj) in
        R.Bag.add ~count:(count * R.Sign.to_int t.R.Term.sign) out acc
      else acc)
    R.Bag.empty (cross t.R.Term.slots)

let reference_query db q =
  List.fold_left
    (fun acc t -> R.Bag.plus acc (reference_term db t))
    R.Bag.empty (R.Query.terms q)

let tuple2_gen range =
  QCheck.Gen.(map R.Tuple.ints (list_size (return 2) (int_bound range)))

let db_gen =
  QCheck.Gen.(
    let* rows1 = list_size (int_bound 7) (tuple2_gen 4) in
    let* rows2 = list_size (int_bound 7) (tuple2_gen 4) in
    let* rows3 = list_size (int_bound 7) (tuple2_gen 4) in
    return
      (R.Db.of_list
         [
           (r1, R.Bag.of_list rows1);
           (r2, R.Bag.of_list rows2);
           (r3, R.Bag.of_list rows3);
         ]))

let query_gen =
  QCheck.Gen.(
    let* db = db_gen in
    let base = R.Query.of_view (view_w3 ()) in
    let* n_subst = int_bound 2 in
    let* updates =
      list_size (return n_subst)
        (let* rel = oneofl [ "r1"; "r2"; "r3" ] in
         let* tup = tuple2_gen 4 in
         let* insert = bool in
         return
           (if insert then R.Update.insert rel tup
            else R.Update.delete rel tup))
    in
    let q =
      List.fold_left
        (fun acc u -> R.Query.minus acc (R.Query.subst acc u))
        base updates
    in
    return (db, q))

let arb_db_query =
  QCheck.make
    ~print:(fun (db, q) -> Format.asprintf "%a@.%a" R.Db.pp db R.Query.pp q)
    query_gen

let equiv_reference =
  QCheck.Test.make ~name:"hash-join evaluator matches brute force" ~count:200
    arb_db_query (fun (db, q) ->
      R.Bag.equal (R.Eval.query db q) (reference_query db q))

let suite =
  [
    Alcotest.test_case "two-way join" `Quick eval_view_simple;
    Alcotest.test_case "duplicates retained" `Quick eval_view_duplicates;
    Alcotest.test_case "three-way join" `Quick eval_three_way_join;
    Alcotest.test_case "residual condition" `Quick eval_condition;
    Alcotest.test_case "signed literals" `Quick eval_signed_literal;
    Alcotest.test_case "negative literal counts" `Quick
      eval_negative_base_counts;
    Alcotest.test_case "term-level sign" `Quick eval_term_sign;
    Alcotest.test_case "query sums terms" `Quick eval_query_sums_terms;
    Alcotest.test_case "statically false condition" `Quick
      eval_constant_condition;
    Alcotest.test_case "cross product without condition" `Quick
      eval_cross_product;
    Alcotest.test_case "literal_term guards" `Quick
      eval_literal_term_requires_no_base;
  ]
  @ [ QCheck_alcotest.to_alcotest equiv_reference ]
