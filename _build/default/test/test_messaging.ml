(* FIFO channels and the network: delivery order, byte accounting, and the
   message-size model. *)

open Helpers
module R = Relational
module M = Messaging

let note n = M.Message.Update_note (ins "r1" [ n; n ])

let fifo_order () =
  let ch = M.Channel.create "t" in
  M.Channel.send ch (note 1);
  M.Channel.send ch (note 2);
  M.Channel.send ch (note 3);
  let got =
    List.init 3 (fun _ ->
        match M.Channel.receive ch with
        | Some (M.Message.Update_note u) -> R.Tuple.get u.R.Update.tuple 0
        | _ -> Alcotest.fail "unexpected message")
  in
  Alcotest.(check (list value_testable)) "in order" [ Int 1; Int 2; Int 3 ] got;
  check_bool "drained" true (M.Channel.is_empty ch)

let receive_empty () =
  let ch = M.Channel.create "t" in
  check_bool "empty receive" true (Option.is_none (M.Channel.receive ch))

let stats_accumulate () =
  let ch = M.Channel.create "t" in
  M.Channel.send ch (note 1);
  M.Channel.send ch (note 2);
  ignore (M.Channel.receive ch);
  check_int "messages counted" 2 (M.Channel.messages_sent ch);
  check_int "one pending" 1 (M.Channel.pending ch);
  check_bool "bytes counted" true (M.Channel.bytes_sent ch > 0)

let message_sizes () =
  let q =
    M.Message.Query { id = 1; query = R.Query.of_view (view_w ()) }
  in
  let a =
    M.Message.Answer
      { id = 1; answer = bag [ [ 1 ]; [ 2 ] ]; cost = Storage.Cost.zero }
  in
  check_bool "query has size" true (M.Message.byte_size q > 0);
  check_int "answer sized by contents" (8 + 8) (M.Message.byte_size a);
  Alcotest.(check string) "kind" "answer" (M.Message.kind_name a)

let network_directions () =
  let net = M.Network.create () in
  M.Network.send net M.Network.To_warehouse (note 1);
  check_bool "other direction empty" true
    (Option.is_none (M.Network.receive net M.Network.To_source));
  check_bool "not quiescent" false (M.Network.quiescent net);
  ignore (M.Network.receive net M.Network.To_warehouse);
  check_bool "quiescent after drain" true (M.Network.quiescent net);
  check_int "totals" 1 (M.Network.total_messages net)

let suite =
  [
    Alcotest.test_case "FIFO order" `Quick fifo_order;
    Alcotest.test_case "receive on empty" `Quick receive_empty;
    Alcotest.test_case "stats accumulate" `Quick stats_accumulate;
    Alcotest.test_case "message sizes" `Quick message_sizes;
    Alcotest.test_case "network directions" `Quick network_directions;
  ]
