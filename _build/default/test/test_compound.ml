(* Views with union and difference (the Section 7 extension): the signed
   delta operator is linear over compound definitions, so every
   compensating algorithm maintains them unchanged. These tests check the
   algebra, the maintenance under adversarial schedules, and a qcheck
   property over random streams. *)

open Helpers
module R = Relational

(* Two SPJ blocks over the chain schema with a common output shape. *)
let block_a =
  R.View.make ~name:"U" ~proj:[ R.Attr.qualified "r1" "W" ]
    ~cond:R.Predicate.True [ r1 ]

let block_b =
  R.View.natural_join ~name:"U#1" ~proj:[ R.Attr.qualified "r1" "W" ]
    [ r1; r2 ]

let block_c =
  R.View.make ~name:"U#2" ~proj:[ R.Attr.qualified "r1" "W" ]
    ~cond:(R.Parser.parse_predicate "X > 5")
    [ r1 ]

let union_view =
  R.Viewdef.make ~name:"U"
    [ (R.Sign.Pos, block_a); (R.Sign.Pos, block_b) ]

let diff_view =
  R.Viewdef.make ~name:"U"
    [ (R.Sign.Pos, block_a); (R.Sign.Neg, block_c) ]

(* ------------------------------------------------------------------ *)
(* Algebra                                                             *)
(* ------------------------------------------------------------------ *)

let eval_union_and_diff () =
  let db = db_of [ (r1, [ [ 1; 2 ]; [ 3; 9 ] ]); (r2, [ [ 2; 0 ] ]) ] in
  (* union: all W from r1 plus the joined ones again (bag union) *)
  check_bag "union adds multiplicities"
    (bag [ [ 1 ]; [ 1 ]; [ 3 ] ])
    (R.Viewdef.eval db union_view);
  (* difference: all W minus those with X > 5 *)
  check_bag "difference subtracts"
    (bag [ [ 1 ] ])
    (R.Viewdef.eval db diff_view)

let delta_linearity () =
  let db = db_of [ (r1, [ [ 1; 2 ] ]); (r2, [ [ 2; 0 ] ]) ] in
  let u = ins "r1" [ 7; 9 ] in
  let db' = R.Db.apply db u in
  List.iter
    (fun vd ->
      let before = R.Viewdef.eval db vd in
      let after = R.Viewdef.eval db' vd in
      let delta = R.Eval.query db' (R.Viewdef.delta vd u) in
      check_bag
        (vd.R.Viewdef.name ^ " delta = after - before")
        (R.Bag.minus after before)
        delta)
    [ union_view; diff_view; R.Viewdef.simple block_b ]

let full_query_matches_eval () =
  let db = db_of [ (r1, [ [ 1; 2 ]; [ 9; 9 ] ]); (r2, [ [ 2; 0 ] ]) ] in
  List.iter
    (fun vd ->
      check_bag
        (vd.R.Viewdef.name ^ " full query = eval")
        (R.Viewdef.eval db vd)
        (R.Eval.query db (R.Viewdef.full_query vd)))
    [ union_view; diff_view ]

let constructors () =
  let a = R.Viewdef.simple block_a and b = R.Viewdef.simple block_b in
  check_int "union parts" 2 (List.length (R.Viewdef.union a b).R.Viewdef.parts);
  check_int "diff parts" 2 (List.length (R.Viewdef.diff a b).R.Viewdef.parts);
  check_bool "diff second part negative" true
    (match (R.Viewdef.diff a b).R.Viewdef.parts with
     | [ _; (R.Sign.Neg, _) ] -> true
     | _ -> false);
  (match R.Viewdef.make ~name:"bad" [] with
   | exception R.Viewdef.Viewdef_error _ -> ()
   | _ -> Alcotest.fail "empty parts accepted");
  check_bool "mentions across parts" true (R.Viewdef.mentions union_view "r2");
  Alcotest.(check (list string))
    "relation names deduped" [ "r1"; "r2" ]
    (R.Viewdef.relation_names union_view)

(* ------------------------------------------------------------------ *)
(* Maintenance                                                         *)
(* ------------------------------------------------------------------ *)

let run_compound ~algorithm ~schedule vd db updates =
  Core.Runner.run_defs ~schedule
    ~creator:(Core.Registry.creator_exn algorithm)
    ~views:[ vd ] ~db ~updates ()

let updates_mixed =
  [
    ins "r1" [ 7; 9 ]; ins "r2" [ 9; 1 ]; del "r1" [ 1; 2 ];
    ins "r1" [ 2; 6 ]; del "r2" [ 2; 0 ];
  ]

let maintenance_under_schedules () =
  let db = db_of [ (r1, [ [ 1; 2 ]; [ 3; 9 ] ]); (r2, [ [ 2; 0 ] ]) ] in
  List.iter
    (fun vd ->
      let truth = R.Viewdef.eval (R.Db.apply_all db updates_mixed) vd in
      List.iter
        (fun (algorithm, wants_complete) ->
          List.iter
            (fun schedule ->
              let r = run_compound ~algorithm ~schedule vd db updates_mixed in
              let report = List.assoc "U" r.Core.Runner.reports in
              check_bool
                (Printf.sprintf "%s on %s consistent" algorithm
                   vd.R.Viewdef.name)
                true
                (if wants_complete then report.Core.Consistency.complete
                 else report.Core.Consistency.strongly_consistent);
              check_bag
                (Printf.sprintf "%s on %s correct" algorithm vd.R.Viewdef.name)
                truth
                (List.assoc "U" r.Core.Runner.final_mvs))
            [ Core.Scheduler.Best_case; Core.Scheduler.Worst_case;
              Core.Scheduler.Random 17 ])
        [ ("eca", false); ("lca", true); ("rv", false); ("sc", true) ])
    [ union_view; diff_view ]

let basic_still_anomalous_on_unions () =
  (* the anomaly phenomenon is orthogonal to the view shape *)
  let db = db_of [ (r1, [ [ 1; 2 ] ]); (r2, []) ] in
  let vd = R.Viewdef.make ~name:"U" [ (R.Sign.Pos, block_b) ] in
  let vd =
    R.Viewdef.union ~name:"U" vd (R.Viewdef.simple block_b)
  in
  ignore vd;
  let vd2 =
    R.Viewdef.make ~name:"U"
      [ (R.Sign.Pos, block_b); (R.Sign.Pos, block_b) ]
  in
  let updates = [ ins "r2" [ 2; 3 ]; ins "r1" [ 4; 2 ] ] in
  let r =
    run_compound ~algorithm:"basic" ~schedule:(explicit "AWAWSWSW") vd2 db
      updates
  in
  check_bool "basic stays anomalous" false
    (List.assoc "U" r.Core.Runner.reports).Core.Consistency.weakly_consistent;
  let r' =
    run_compound ~algorithm:"eca" ~schedule:(explicit "AWAWSWSW") vd2 db
      updates
  in
  check_bool "eca fixes it on compound views too" true
    (List.assoc "U" r'.Core.Runner.reports)
      .Core.Consistency.strongly_consistent

let ecak_rejects_compound () =
  let db = db_of [ (r1, []); (r2, []) ] in
  match
    Core.Eca_key.create (Core.Algorithm.Config.of_db union_view db)
  with
  | exception Core.Eca_key.Not_applicable _ -> ()
  | _ -> Alcotest.fail "expected Not_applicable"

let negative_states_are_legal_for_differences () =
  (* a difference view can legitimately go net-negative; maintenance must
     track it faithfully rather than clamp *)
  let vd =
    R.Viewdef.make ~name:"U"
      [ (R.Sign.Pos, block_a); (R.Sign.Neg, block_b) ]
  in
  (* r1 x r2 join counts can exceed plain r1 counts *)
  let db = db_of [ (r1, [ [ 1; 2 ] ]); (r2, [ [ 2; 0 ]; [ 2; 1 ] ]) ] in
  let truth = R.Viewdef.eval db vd in
  check_int "initially net -1" (-1) (R.Bag.count truth (R.Tuple.ints [ 1 ]));
  let updates = [ ins "r2" [ 2; 5 ] ] in
  let r =
    run_compound ~algorithm:"eca" ~schedule:Core.Scheduler.Worst_case vd db
      updates
  in
  check_int "maintained to net -2" (-2)
    (R.Bag.count (List.assoc "U" r.Core.Runner.final_mvs) (R.Tuple.ints [ 1 ]))

(* ------------------------------------------------------------------ *)
(* qcheck                                                              *)
(* ------------------------------------------------------------------ *)

let compound_prop =
  QCheck.Test.make
    ~name:"ECA/LCA strongly consistent on random compound views" ~count:80
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000))
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let tuple () = R.Tuple.ints [ Random.State.int st 5; Random.State.int st 5 ] in
      let rows n = List.init (Random.State.int st n) (fun _ -> tuple ()) in
      let db =
        R.Db.of_list
          [
            (r1, R.Bag.of_list (rows 5));
            (r2, R.Bag.of_list (rows 5));
          ]
      in
      let vd =
        let sign () = if Random.State.bool st then R.Sign.Pos else R.Sign.Neg in
        let parts =
          (R.Sign.Pos, block_a)
          :: List.filter_map
               (fun b -> if Random.State.bool st then Some (sign (), b) else None)
               [ block_b; block_c ]
        in
        R.Viewdef.make ~name:"U" parts
      in
      let updates =
        List.init
          (1 + Random.State.int st 5)
          (fun _ ->
            let rel = if Random.State.bool st then "r1" else "r2" in
            let t = tuple () in
            if
              Random.State.bool st
              || R.Bag.count (R.Db.contents db rel) t <= 0
            then R.Update.insert rel t
            else R.Update.delete rel t)
      in
      (* make the stream applicable in order *)
      let _, updates =
        List.fold_left
          (fun (db, acc) u ->
            match R.Db.apply db u with
            | db' -> (db', u :: acc)
            | exception R.Db.Db_error _ ->
              let u' = R.Update.insert u.R.Update.rel u.R.Update.tuple in
              (R.Db.apply db u', u' :: acc))
          (db, []) updates
      in
      let updates = List.rev updates in
      let truth = R.Viewdef.eval (R.Db.apply_all db updates) vd in
      List.for_all
        (fun (algorithm, wants_complete) ->
          List.for_all
            (fun schedule ->
              let r = run_compound ~algorithm ~schedule vd db updates in
              let report = List.assoc "U" r.Core.Runner.reports in
              (if wants_complete then report.Core.Consistency.complete
               else report.Core.Consistency.strongly_consistent)
              && R.Bag.equal truth (List.assoc "U" r.Core.Runner.final_mvs))
            [ Core.Scheduler.Worst_case; Core.Scheduler.Random seed ])
        [ ("eca", false); ("lca", true) ])

let suite =
  [
    Alcotest.test_case "union and difference evaluation" `Quick
      eval_union_and_diff;
    Alcotest.test_case "delta linearity" `Quick delta_linearity;
    Alcotest.test_case "full query matches eval" `Quick full_query_matches_eval;
    Alcotest.test_case "constructors and metadata" `Quick constructors;
    Alcotest.test_case "maintenance under adversarial schedules" `Quick
      maintenance_under_schedules;
    Alcotest.test_case "basic anomalous / ECA correct on unions" `Quick
      basic_still_anomalous_on_unions;
    Alcotest.test_case "ECAK rejects compound views" `Quick
      ecak_rejects_compound;
    Alcotest.test_case "negative difference states tracked" `Quick
      negative_states_are_legal_for_differences;
  ]
  @ [ QCheck_alcotest.to_alcotest compound_prop ]
