(* Signed-bag unit tests plus qcheck laws: the algebraic properties of
   Section 4.1 that the compensation scheme relies on. *)

open Helpers
module R = Relational

let t1 = R.Tuple.ints [ 1 ]
let t2 = R.Tuple.ints [ 2 ]

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let counts () =
  let b = R.Bag.add ~count:2 t1 (R.Bag.singleton ~count:(-1) t2) in
  check_int "positive count" 2 (R.Bag.count b t1);
  check_int "negative count" (-1) (R.Bag.count b t2);
  check_int "absent" 0 (R.Bag.count b (R.Tuple.ints [ 9 ]));
  check_int "cardinality counts copies" 3 (R.Bag.cardinality b);
  check_int "net cardinality" 1 (R.Bag.net_cardinality b);
  check_bool "has negative" true (R.Bag.has_negative b)

let cancellation () =
  let b = R.Bag.add ~count:(-1) t1 (R.Bag.singleton t1) in
  check_bool "opposite signs cancel to empty" true (R.Bag.is_empty b);
  let c = R.Bag.of_signed_list [ (R.Sign.Pos, t1); (R.Sign.Neg, t1) ] in
  check_bool "signed list cancels" true (R.Bag.is_empty c)

let pos_neg_parts () =
  let b = R.Bag.add ~count:(-3) t2 (R.Bag.singleton ~count:2 t1) in
  check_bag "pos part" (R.Bag.singleton ~count:2 t1) (R.Bag.pos_part b);
  check_bag "neg part has magnitudes" (R.Bag.singleton ~count:3 t2)
    (R.Bag.neg_part b)

let plus_minus () =
  let a = R.Bag.singleton ~count:2 t1 in
  let b = R.Bag.add ~count:1 t2 (R.Bag.singleton ~count:(-1) t1) in
  let sum = R.Bag.plus a b in
  check_int "t1 nets to 1" 1 (R.Bag.count sum t1);
  check_int "t2 nets to 1" 1 (R.Bag.count sum t2);
  check_bag "a - a = empty" R.Bag.empty (R.Bag.minus a a)

let truncating_diff () =
  let a = R.Bag.singleton ~count:1 t1 in
  let b = R.Bag.singleton ~count:3 t1 in
  check_bag "truncates at zero" R.Bag.empty (R.Bag.diff_truncated a b);
  check_int "signed minus goes negative" (-2)
    (R.Bag.count (R.Bag.minus a b) t1)

let dedup () =
  let b = R.Bag.add ~count:3 t1 (R.Bag.singleton ~count:(-2) t2) in
  let s = R.Bag.dedup_to_set b in
  check_int "kept one positive copy" 1 (R.Bag.count s t1);
  check_int "dropped negatives" 0 (R.Bag.count s t2);
  check_bool "result is a set" true (R.Bag.is_set s)

let expansion () =
  let b = R.Bag.add ~count:(-1) t2 (R.Bag.singleton ~count:2 t1) in
  Alcotest.(check int) "expanded entries" 3 (List.length (R.Bag.to_list b));
  check_int "byte size weighs copies" ((2 * 4) + 4) (R.Bag.byte_size b)

(* ------------------------------------------------------------------ *)
(* qcheck laws                                                         *)
(* ------------------------------------------------------------------ *)

let tuple_gen =
  QCheck.Gen.(
    map (fun l -> R.Tuple.ints l) (list_size (return 2) (int_bound 3)))

let bag_gen =
  QCheck.Gen.(
    map
      (fun entries ->
        List.fold_left
          (fun b (t, c) -> R.Bag.add ~count:c t b)
          R.Bag.empty entries)
      (list_size (int_bound 8) (pair tuple_gen (int_range (-3) 3))))

let arb_bag = QCheck.make ~print:R.Bag.to_string bag_gen

let arb_bag2 = QCheck.pair arb_bag arb_bag
let arb_bag3 = QCheck.triple arb_bag arb_bag arb_bag

let law name count arb law = QCheck.Test.make ~name ~count arb law

let qcheck_suite =
  List.map QCheck_alcotest.to_alcotest
    [
      law "plus is commutative" 200 arb_bag2 (fun (a, b) ->
          R.Bag.equal (R.Bag.plus a b) (R.Bag.plus b a));
      law "plus is associative" 200 arb_bag3 (fun (a, b, c) ->
          R.Bag.equal
            (R.Bag.plus (R.Bag.plus a b) c)
            (R.Bag.plus a (R.Bag.plus b c)));
      law "empty is the identity" 200 arb_bag (fun a ->
          R.Bag.equal (R.Bag.plus a R.Bag.empty) a);
      law "minus is plus of negation" 200 arb_bag2 (fun (a, b) ->
          R.Bag.equal (R.Bag.minus a b) (R.Bag.plus a (R.Bag.negate b)));
      law "negate is an involution" 200 arb_bag (fun a ->
          R.Bag.equal (R.Bag.negate (R.Bag.negate a)) a);
      law "a - a = 0" 200 arb_bag (fun a ->
          R.Bag.is_empty (R.Bag.minus a a));
      law "paper identity: a + b = (pos a u pos b) - (neg a u neg b)" 200
        arb_bag2 (fun (a, b) ->
          (* with ℤ counts, the signed sum equals the union of positive
             parts minus the union of negative magnitudes *)
          R.Bag.equal (R.Bag.plus a b)
            (R.Bag.minus
               (R.Bag.union (R.Bag.pos_part a) (R.Bag.pos_part b))
               (R.Bag.plus (R.Bag.neg_part a) (R.Bag.neg_part b))));
      law "pos/neg decomposition" 200 arb_bag (fun a ->
          R.Bag.equal a (R.Bag.minus (R.Bag.pos_part a) (R.Bag.neg_part a)));
      law "cardinality is |pos| + |neg|" 200 arb_bag (fun a ->
          R.Bag.cardinality a
          = R.Bag.cardinality (R.Bag.pos_part a)
            + R.Bag.cardinality (R.Bag.neg_part a));
      law "scale distributes over plus" 200 arb_bag2 (fun (a, b) ->
          R.Bag.equal
            (R.Bag.scale 3 (R.Bag.plus a b))
            (R.Bag.plus (R.Bag.scale 3 a) (R.Bag.scale 3 b)));
      law "apply_sign Neg negates" 200 arb_bag (fun a ->
          R.Bag.equal (R.Bag.apply_sign R.Sign.Neg a) (R.Bag.negate a));
      law "dedup_to_set is a positive set" 200 arb_bag (fun a ->
          let s = R.Bag.dedup_to_set a in
          R.Bag.is_set s && not (R.Bag.has_negative s));
    ]

let suite =
  [
    Alcotest.test_case "counts" `Quick counts;
    Alcotest.test_case "sign cancellation" `Quick cancellation;
    Alcotest.test_case "pos/neg parts" `Quick pos_neg_parts;
    Alcotest.test_case "plus and minus" `Quick plus_minus;
    Alcotest.test_case "truncating vs signed difference" `Quick
      truncating_diff;
    Alcotest.test_case "duplicate elimination" `Quick dedup;
    Alcotest.test_case "expansion and byte size" `Quick expansion;
  ]
  @ qcheck_suite
