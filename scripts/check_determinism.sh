#!/bin/sh
# Determinism check for the parallel bench: `bench quick` with PAR=1 and
# PAR=N must emit identical `runs` arrays — same order, same values —
# differing only in the measured wall_clock_s of each run (timing noise
# exists even between two sequential runs, so those fields are normalized
# to 0 before diffing).
#
# Usage: check_determinism.sh [BENCH_EXE] [PAR_N]
set -eu

exe=${1:-./_build/default/bench/main.exe}
par=${2:-4}

case $exe in
  /*) ;;
  *) exe=$(pwd)/$exe ;;
esac

if [ ! -x "$exe" ]; then
  echo "check_determinism: $exe not found (dune build bench/main.exe first)" >&2
  exit 2
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
mkdir "$tmp/seq" "$tmp/par"

( cd "$tmp/seq" && PAR=1 "$exe" quick > stdout.txt )
( cd "$tmp/par" && PAR="$par" "$exe" quick > stdout.txt )

# Keep the observe and throughput objects and the runs array (schema v6
# puts "observe" then "throughput" just above "runs"); zero out the
# per-run wall clocks, the observe overhead ratio and the throughput
# rates — all timing noise. The second wall-clock sed catches the
# scaling section's flat gate fields (n10_wall_clock_s and friends,
# schema v8), which the quoted "wall_clock_s" pattern cannot reach.
normalize() {
  sed -n '/"observe": {/,$p' "$1" \
    | sed 's/"wall_clock_s": [0-9.eE+-]*/"wall_clock_s": 0/' \
    | sed 's/_wall_clock_s": [0-9.eE+-]*/_wall_clock_s": 0/' \
    | sed 's/"overhead_x": [0-9.eE+-]*/"overhead_x": 0/' \
    | sed 's/"updates_per_s": [0-9.eE+-]*/"updates_per_s": 0/' \
    | sed 's/"interpreted_updates_per_s": [0-9.eE+-]*/"interpreted_updates_per_s": 0/' \
    | sed 's/"compiled_speedup_x": [0-9.eE+-]*/"compiled_speedup_x": 0/'
}

normalize "$tmp/seq/BENCH_results.json" > "$tmp/runs_seq"
normalize "$tmp/par/BENCH_results.json" > "$tmp/runs_par"

if ! diff -u "$tmp/runs_seq" "$tmp/runs_par" > "$tmp/runs.diff"; then
  echo "check_determinism: FAIL — runs arrays differ between PAR=1 and PAR=$par" >&2
  head -40 "$tmp/runs.diff" >&2
  exit 1
fi

# The human-readable report must match too, apart from the worker-count
# and total-wall-clock summary lines.
strip_summary() {
  grep -v '^workers:' "$1" | grep -v '^wrote [0-9]* runs' \
    | grep -v '^observe overhead' | grep -v '^throughput '
}

strip_summary "$tmp/seq/stdout.txt" > "$tmp/out_seq"
strip_summary "$tmp/par/stdout.txt" > "$tmp/out_par"

if ! diff -u "$tmp/out_seq" "$tmp/out_par" > "$tmp/out.diff"; then
  echo "check_determinism: FAIL — report output differs between PAR=1 and PAR=$par" >&2
  head -40 "$tmp/out.diff" >&2
  exit 1
fi

# The federated bench section must be present: it is the only section
# exercising the per-site delivery breakdown (schema v4), so losing it
# would silently shrink what this determinism check covers.
if ! grep -q '"figure": "Federation' "$tmp/seq/BENCH_results.json"; then
  echo "check_determinism: FAIL — federation section missing from bench output" >&2
  exit 1
fi

# The observability ablation must report the spans-off path as
# byte-identical: a "false" here means instrumentation leaked into the
# uninstrumented run (a determinism bug by definition, caught at the
# source rather than as a golden-trace diff later).
if ! grep -q '"byte_identical_off": true' "$tmp/seq/BENCH_results.json"; then
  echo "check_determinism: FAIL — spans-off bench output is not byte-identical" >&2
  exit 1
fi

# The sustained-throughput section (schema v6) must be present and its
# compiled path must serialize byte-identically to the interpreted one:
# a missing object means the headline perf number silently stopped being
# measured; "false" means the compiled delta programs changed a run.
if ! grep -q '"throughput": {' "$tmp/seq/BENCH_results.json"; then
  echo "check_determinism: FAIL — throughput section missing from bench output" >&2
  exit 1
fi
if ! grep -q '"byte_identical_interpreted": true' "$tmp/seq/BENCH_results.json"; then
  echo "check_determinism: FAIL — compiled delta programs changed the run output" >&2
  exit 1
fi

# The multi-view catalog section (schema v7) must be present and its
# "catalog" object must report sharing as a pure optimization: a missing
# object means the MQO section silently stopped running; a false
# shared_off_identical means sharing changed a view's lifecycle — a
# correctness bug surfaced here rather than as a consistency failure
# downstream.
if ! grep -q '"catalog": {' "$tmp/seq/BENCH_results.json"; then
  echo "check_determinism: FAIL — catalog section missing from bench output" >&2
  exit 1
fi
if ! grep -q '"shared_off_identical": true' "$tmp/seq/BENCH_results.json"; then
  echo "check_determinism: FAIL — shared-delta maintenance changed a view state" >&2
  exit 1
fi

# The scaling section (schema v8) must be present and PAR-invariant —
# its cells run with the warehouse sharded over the pool, so it is the
# section that would diverge first if Pool.map stopped behaving like a
# sequential map. Its two correctness flags are asserted here too:
# coalescing must not have changed a view's final state, and the
# observed 10-view cell must report staleness 0 at every quiescence.
if ! grep -q '"scaling": {' "$tmp/seq/BENCH_results.json"; then
  echo "check_determinism: FAIL — scaling section missing from bench output" >&2
  exit 1
fi
if ! grep -q '"coalesce_states_identical": true' "$tmp/seq/BENCH_results.json"; then
  echo "check_determinism: FAIL — per-edge coalescing changed a view state" >&2
  exit 1
fi
if ! grep -q '"scale_stale_quiesce_max": 0' "$tmp/seq/BENCH_results.json"; then
  echo "check_determinism: FAIL — an ECA view was stale at quiescence in the scaling cell" >&2
  exit 1
fi

# The self-maintainability section (schema v9) must be present, its
# eligible cell must report zero messages and zero fallbacks (ECA-SM
# answering the whole stream warehouse-locally), and the observed run
# must show staleness 0 at every quiescence probe. The section sits
# inside the normalization window above, so its cells are also
# PAR-invariance-checked like every other run.
if ! grep -q '"selfmaint": {' "$tmp/seq/BENCH_results.json"; then
  echo "check_determinism: FAIL — selfmaint section missing from bench output" >&2
  exit 1
fi
if ! grep -q '"messages_eca_sm": 0' "$tmp/seq/BENCH_results.json"; then
  echo "check_determinism: FAIL — ECA-SM sent messages on the self-maintainable workload" >&2
  exit 1
fi
if ! grep -q '"fallback": 0' "$tmp/seq/BENCH_results.json"; then
  echo "check_determinism: FAIL — ECA-SM took the query fallback on an eligible class" >&2
  exit 1
fi

# The evolution section (schema v10) must be present: it is the only
# section exercising online schema changes (DDL x fault x channel) and
# the windowed-view layer, so losing it would silently shrink coverage.
# Its FIFO correctness cells are gated by the bench itself; here we
# assert the object survived into the JSON, that the DDL protocol's
# tombstone budget is the pinned 0, and that the windowed cell both aged
# partitions out and pruned compensation terms (a 0 in either counter
# means the windowed wrapper stopped doing its job on this workload).
if ! grep -q '"evolution": {' "$tmp/seq/BENCH_results.json"; then
  echo "check_determinism: FAIL — evolution section missing from bench output" >&2
  exit 1
fi
if ! grep -q '"stale_quiesce_max": 0' "$tmp/seq/BENCH_results.json"; then
  echo "check_determinism: FAIL — the DDL tombstone budget is no longer pinned to 0" >&2
  exit 1
fi
if grep -q '"win_aged_partitions": 0' "$tmp/seq/BENCH_results.json"; then
  echo "check_determinism: FAIL — the windowed bench cell aged no partition out" >&2
  exit 1
fi
if grep -q '"win_pruned_terms": 0' "$tmp/seq/BENCH_results.json"; then
  echo "check_determinism: FAIL — the windowed bench cell pruned no compensation term" >&2
  exit 1
fi

runs=$(grep -c '"figure"' "$tmp/seq/BENCH_results.json" || true)
echo "check_determinism: OK — $runs runs identical between PAR=1 and PAR=$par (modulo wall clocks)"
