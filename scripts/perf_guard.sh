#!/bin/sh
# Perf-regression guard for the quick benchmark.
#
# Usage: perf_guard.sh BASELINE_JSON CURRENT_JSON
#
# Compares the "sum_run_wall_clock_s" field of two BENCH_results.json
# files (schema 5, see EXPERIMENTS.md) and fails when the current run is
# more than 2x slower than the committed baseline. Also checks the
# observability ablation's spans-on/spans-off ratio against the same 2x
# guard when the current file carries one (schema >= 5). The summed per-run
# wall clock is compared — not the process total — because it measures
# the work done and is invariant under the PAR worker count, whereas
# total_wall_clock_s shrinks with parallel fan-out. Machine noise on
# loaded CI boxes is real, so the threshold is deliberately loose: it
# catches algorithmic regressions (accidental quadratic loops, lost
# caching), not jitter.
set -eu

baseline_file=$1
current_file=$2

extract() {
  # The writer emits each field on its own line: "field": 1.234,
  # [|| true] so a missing field reaches the explicit check below instead
  # of tripping set -e inside the pipeline.
  grep -o "\"$2\": *[0-9.]*" "$1" 2>/dev/null \
    | grep -o '[0-9.]*$' || true
}

schema_baseline=$(extract "$baseline_file" schema_version)
schema_current=$(extract "$current_file" schema_version)

if [ -z "$schema_baseline" ] || [ -z "$schema_current" ]; then
  echo "perf_guard: could not read schema_version from both files" >&2
  exit 2
fi

if [ "$schema_baseline" != "$schema_current" ]; then
  echo "perf_guard: schema mismatch — baseline is schema $schema_baseline," \
    "current is schema $schema_current." >&2
  echo "perf_guard: regenerate the committed baseline with the current" \
    "bench (dune exec bench/main.exe -- quick) before comparing." >&2
  exit 2
fi

baseline=$(extract "$baseline_file" sum_run_wall_clock_s)
current=$(extract "$current_file" sum_run_wall_clock_s)

if [ -z "$baseline" ] || [ -z "$current" ]; then
  echo "perf_guard: could not read sum_run_wall_clock_s (schema >= 3" \
    "required; found schema $schema_current)" >&2
  exit 2
fi

# ratio check in awk (POSIX sh has no float arithmetic)
awk -v b="$baseline" -v c="$current" 'BEGIN {
  ratio = c / b;
  printf "perf_guard: baseline %.3fs, current %.3fs (%.2fx, summed per-run wall clock)\n", b, c, ratio;
  if (ratio > 2.0) {
    printf "perf_guard: FAIL — quick bench regressed more than 2x\n";
    exit 1;
  }
  printf "perf_guard: OK\n";
}'

overhead=$(extract "$current_file" overhead_x)
if [ -n "$overhead" ]; then
  awk -v o="$overhead" 'BEGIN {
    printf "perf_guard: observe overhead %.2fx (spans on / spans off)\n", o;
    if (o > 2.0) {
      printf "perf_guard: FAIL — observability layer costs more than 2x\n";
      exit 1;
    }
    printf "perf_guard: observe OK\n";
  }'
fi
