#!/bin/sh
# Perf-regression guard for the quick benchmark.
#
# Usage: perf_guard.sh BASELINE_JSON CURRENT_JSON
#
# Compares the "sum_run_wall_clock_s" field of two BENCH_results.json
# files (schema 8, see EXPERIMENTS.md) and fails when the current run is
# more than 2x slower than the committed baseline. Also checks the
# observability ablation's spans-on/spans-off ratio against the same 2x
# guard when the current file carries one (schema >= 5), and gates the
# sustained-throughput section (schema >= 6): the compiled delta
# programs must not be slower than the interpreted path
# (compiled_speedup_x >= 1.0), and the compiled updates/sec must not
# fall below half the committed baseline's. Schema >= 7 adds the
# multi-view catalog gate: the "catalog" object must be present and its
# shared-delta (MQO) maintenance must actually save queries somewhere
# (best cell's shared_saved > 0). Schema >= 8 adds the scaling gates:
# the "scaling" object must be present, the 100-source cell must run
# within 5x the 10-source cell on the same total update count (the
# O(active) event-loop gate — the historical O(N)-per-step readiness
# rebuild pays ~10x there), and per-edge coalescing must ship strictly
# fewer wire frames than the uncoalesced baseline. Schema >= 9 adds the
# self-maintainability gate: the "selfmaint" object must be present and
# its eligible cell must report messages_eca_sm = 0, bytes_eca_sm = 0
# and fallback = 0 — ECA-SM answering the whole self-maintainable
# stream warehouse-locally. Schema >= 10 adds the evolution gate: the
# "evolution" object must be present, its DDL tombstone budget pinned
# at 0, and its windowed cell must age partitions out and prune
# compensation terms. The summed per-run
# wall clock is compared — not the process total — because it measures
# the work done and is invariant under the PAR worker count, whereas
# total_wall_clock_s shrinks with parallel fan-out. Machine noise on
# loaded CI boxes is real, so the threshold is deliberately loose: it
# catches algorithmic regressions (accidental quadratic loops, lost
# caching), not jitter.
set -eu

baseline_file=$1
current_file=$2

extract() {
  # The writer emits each field on its own line: "field": 1.234,
  # [|| true] so a missing field reaches the explicit check below instead
  # of tripping set -e inside the pipeline.
  grep -o "\"$2\": *[0-9.]*" "$1" 2>/dev/null \
    | grep -o '[0-9.]*$' || true
}

schema_baseline=$(extract "$baseline_file" schema_version)
schema_current=$(extract "$current_file" schema_version)

if [ -z "$schema_baseline" ] || [ -z "$schema_current" ]; then
  echo "perf_guard: could not read schema_version from both files" >&2
  exit 2
fi

if [ "$schema_baseline" != "$schema_current" ]; then
  echo "perf_guard: schema mismatch — baseline is schema $schema_baseline," \
    "current is schema $schema_current." >&2
  if [ "$schema_current" -ge 7 ] && [ "$schema_baseline" -lt 7 ]; then
    echo "perf_guard: the committed baseline predates the schema-7" \
      "multi-view catalog section." >&2
  fi
  if [ "$schema_current" -ge 9 ] && [ "$schema_baseline" -lt 9 ]; then
    echo "perf_guard: the committed baseline predates the schema-9" \
      "self-maintainability (ECA-SM) section." >&2
  fi
  if [ "$schema_current" -ge 10 ] && [ "$schema_baseline" -lt 10 ]; then
    echo "perf_guard: the committed baseline predates the schema-10" \
      "evolution section (online schema changes and windowed views)." >&2
  fi
  echo "perf_guard: regenerate the committed baseline with the current" \
    "bench (dune exec bench/main.exe -- quick) before comparing." >&2
  exit 2
fi

baseline=$(extract "$baseline_file" sum_run_wall_clock_s)
current=$(extract "$current_file" sum_run_wall_clock_s)

if [ -z "$baseline" ] || [ -z "$current" ]; then
  echo "perf_guard: could not read sum_run_wall_clock_s (schema >= 3" \
    "required; found schema $schema_current)" >&2
  exit 2
fi

# ratio check in awk (POSIX sh has no float arithmetic)
awk -v b="$baseline" -v c="$current" 'BEGIN {
  ratio = c / b;
  printf "perf_guard: baseline %.3fs, current %.3fs (%.2fx, summed per-run wall clock)\n", b, c, ratio;
  if (ratio > 2.0) {
    printf "perf_guard: FAIL — quick bench regressed more than 2x\n";
    exit 1;
  }
  printf "perf_guard: OK\n";
}'

overhead=$(extract "$current_file" overhead_x)
if [ -n "$overhead" ]; then
  awk -v o="$overhead" 'BEGIN {
    printf "perf_guard: observe overhead %.2fx (spans on / spans off)\n", o;
    if (o > 2.0) {
      printf "perf_guard: FAIL — observability layer costs more than 2x\n";
      exit 1;
    }
    printf "perf_guard: observe OK\n";
  }'
fi

# Sustained-throughput gate (schema >= 6). A schema-6 current file with
# no throughput section means the headline number silently stopped being
# measured — that is a failure of the bench, not something to skip over.
speedup=$(extract "$current_file" compiled_speedup_x)
if [ "$schema_current" -ge 6 ] && [ -z "$speedup" ]; then
  echo "perf_guard: schema $schema_current output carries no" \
    "\"compiled_speedup_x\" — the throughput section is missing." >&2
  echo "perf_guard: regenerate with the current bench" \
    "(dune exec bench/main.exe -- quick) and re-run." >&2
  exit 2
fi
if [ -n "$speedup" ]; then
  awk -v s="$speedup" 'BEGIN {
    printf "perf_guard: compiled delta programs %.2fx vs interpreted\n", s;
    if (s < 1.0) {
      printf "perf_guard: FAIL — compiled apply path is slower than the interpreted one\n";
      exit 1;
    }
    printf "perf_guard: compiled speedup OK\n";
  }'
  tp_baseline=$(extract "$baseline_file" updates_per_s)
  tp_current=$(extract "$current_file" updates_per_s)
  if [ -n "$tp_baseline" ] && [ -n "$tp_current" ]; then
    awk -v b="$tp_baseline" -v c="$tp_current" 'BEGIN {
      ratio = c / b;
      printf "perf_guard: throughput baseline %.0f updates/s, current %.0f (%.2fx)\n", b, c, ratio;
      if (ratio < 0.5) {
        printf "perf_guard: FAIL — compiled-path throughput fell below half the baseline\n";
        exit 1;
      }
      printf "perf_guard: throughput OK\n";
    }'
  fi
fi

# Multi-view catalog gate (schema >= 7). The "catalog" object must be
# present — a schema-7 file without one means the section silently
# stopped running — and the shared-delta (MQO) maintenance must actually
# save queries: the best cell's shared_saved is gated > 0.
if [ "$schema_current" -ge 7 ]; then
  if ! grep -q '"catalog": {' "$current_file"; then
    echo "perf_guard: schema $schema_current output carries no" \
      "\"catalog\" object — the multi-view section is missing." >&2
    echo "perf_guard: regenerate with the current bench" \
      "(dune exec bench/main.exe -- quick) and re-run." >&2
    exit 2
  fi
  saved_max=$(extract "$current_file" shared_saved | sort -n | tail -1)
  if [ -z "$saved_max" ]; then
    echo "perf_guard: catalog object carries no shared_saved cells" >&2
    exit 2
  fi
  awk -v s="$saved_max" 'BEGIN {
    printf "perf_guard: shared-delta maintenance saved %d queries in its best cell\n", s;
    if (s <= 0) {
      printf "perf_guard: FAIL — MQO sharing saved no queries\n";
      exit 1;
    }
    printf "perf_guard: catalog OK\n";
  }'
fi

# Scaling gates (schema >= 8). The "scaling" object must be present —
# a schema-8 file without one means the N-source matrix silently stopped
# running. Its two perf claims are then gated directly:
#   - O(active): the n=100 gate cell processes the same 200-update
#     stream as the n=10 cell, so with per-step cost off N the wall
#     ratio sits near 1x; the old O(N)-per-step readiness rebuild pays
#     ~10x. Gated at 5x (both cells are best-of-3, but CI noise is real).
#   - Coalescing: strictly fewer wire frames than the uncoalesced run
#     of the identical hot stream.
if [ "$schema_current" -ge 8 ]; then
  if ! grep -q '"scaling": {' "$current_file"; then
    echo "perf_guard: schema $schema_current output carries no" \
      "\"scaling\" object — the N-source matrix is missing." >&2
    echo "perf_guard: regenerate with the current bench" \
      "(dune exec bench/main.exe -- quick) and re-run." >&2
    exit 2
  fi
  n10=$(extract "$current_file" n10_wall_clock_s)
  n100=$(extract "$current_file" n100_wall_clock_s)
  if [ -z "$n10" ] || [ -z "$n100" ]; then
    echo "perf_guard: scaling object carries no n10/n100 wall-clock gate cells" >&2
    exit 2
  fi
  awk -v a="$n10" -v b="$n100" 'BEGIN {
    ratio = b / a;
    printf "perf_guard: 200 updates over 100 sources cost %.2fx the 10-source run\n", ratio;
    if (ratio > 5.0) {
      printf "perf_guard: FAIL — per-step cost grows with N (O(active) loop regressed)\n";
      exit 1;
    }
    printf "perf_guard: O(active) OK\n";
  }'
  c_off=$(extract "$current_file" coalesce_off_wire_messages)
  c_on=$(extract "$current_file" coalesce_on_wire_messages)
  if [ -z "$c_off" ] || [ -z "$c_on" ]; then
    echo "perf_guard: scaling object carries no coalescing wire counts" >&2
    exit 2
  fi
  awk -v off="$c_off" -v on="$c_on" 'BEGIN {
    printf "perf_guard: coalescing shipped %d wire frames vs %d uncoalesced\n", on, off;
    if (on >= off) {
      printf "perf_guard: FAIL — per-edge coalescing no longer reduces shipped frames\n";
      exit 1;
    }
    printf "perf_guard: coalescing OK\n";
  }'
fi

# Self-maintainability gate (schema >= 9). The "selfmaint" object must
# be present — a schema-9 file without one means the ECA-SM matrix
# silently stopped running. Its eligible cell is then gated directly:
# ECA-SM maintains the self-maintainable family with zero compensating
# messages, zero transferred bytes and zero fallbacks. A mismatch here
# usually means one of the two files predates schema 9 — the
# schema_version check above reports that case explicitly.
if [ "$schema_current" -ge 9 ]; then
  if ! grep -q '"selfmaint": {' "$current_file"; then
    echo "perf_guard: schema $schema_current output carries no" \
      "\"selfmaint\" object — the self-maintainability section is missing." >&2
    echo "perf_guard: regenerate with the current bench" \
      "(dune exec bench/main.exe -- quick) and re-run." >&2
    exit 2
  fi
  sm_msgs=$(extract "$current_file" messages_eca_sm)
  sm_bytes=$(extract "$current_file" bytes_eca_sm)
  sm_fallback=$(extract "$current_file" fallback)
  if [ -z "$sm_msgs" ] || [ -z "$sm_bytes" ] || [ -z "$sm_fallback" ]; then
    echo "perf_guard: selfmaint object carries no eligible-cell gate fields" \
      "(messages_eca_sm / bytes_eca_sm / fallback)" >&2
    exit 2
  fi
  awk -v m="$sm_msgs" -v b="$sm_bytes" -v f="$sm_fallback" 'BEGIN {
    printf "perf_guard: ECA-SM eligible cell: M=%d B=%d fallbacks=%d\n", m, b, f;
    if (m != 0 || b != 0 || f != 0) {
      printf "perf_guard: FAIL — ECA-SM sent traffic on the self-maintainable workload\n";
      exit 1;
    }
    printf "perf_guard: selfmaint OK\n";
  }'
fi

# Evolution gate (schema >= 10). The "evolution" object must be present
# — a schema-10 file without one means the DDL x fault x channel matrix
# and the windowed cell silently stopped running. Its protocol claims
# are then gated directly: the tombstone budget stays at the pinned 0
# (every stale answer crossing a schema change is absorbed by
# quiescence on FIFO channels), and the windowed cell actually aged
# partitions out and pruned out-of-window compensation terms.
if [ "$schema_current" -ge 10 ]; then
  if ! grep -q '"evolution": {' "$current_file"; then
    echo "perf_guard: schema $schema_current output carries no" \
      "\"evolution\" object — the schema-change/windowed section is missing." >&2
    echo "perf_guard: regenerate with the current bench" \
      "(dune exec bench/main.exe -- quick) and re-run." >&2
    exit 2
  fi
  # stale_quiesce_max appears in several sections (catalog rungs,
  # scaling, selfmaint, evolution) — all must be 0, so gate the max.
  quiesce_max=$(extract "$current_file" stale_quiesce_max | sort -n | tail -1)
  aged=$(extract "$current_file" win_aged_partitions | sort -n | tail -1)
  pruned=$(extract "$current_file" win_pruned_terms | sort -n | tail -1)
  if [ -z "$quiesce_max" ] || [ -z "$aged" ] || [ -z "$pruned" ]; then
    echo "perf_guard: evolution object carries no gate fields" \
      "(stale_quiesce_max / win_aged_partitions / win_pruned_terms)" >&2
    exit 2
  fi
  awk -v q="$quiesce_max" -v a="$aged" -v p="$pruned" 'BEGIN {
    printf "perf_guard: evolution: stale_quiesce_max=%d aged=%d pruned=%d\n", q, a, p;
    if (q != 0) {
      printf "perf_guard: FAIL — the DDL tombstone budget is no longer pinned to 0\n";
      exit 1;
    }
    if (a <= 0 || p <= 0) {
      printf "perf_guard: FAIL — the windowed cell stopped aging or pruning\n";
      exit 1;
    }
    printf "perf_guard: evolution OK\n";
  }'
fi
