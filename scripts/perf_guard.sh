#!/bin/sh
# Perf-regression guard for the quick benchmark.
#
# Usage: perf_guard.sh BASELINE_JSON CURRENT_JSON
#
# Compares the "total_wall_clock_s" field of two BENCH_results.json files
# (schema in EXPERIMENTS.md) and fails when the current run is more than
# 2x slower than the committed baseline. Machine noise on loaded CI boxes
# is real, so the threshold is deliberately loose: it catches algorithmic
# regressions (accidental quadratic loops, lost caching), not jitter.
set -eu

baseline_file=$1
current_file=$2

extract() {
  # The writer emits the field on its own line: "total_wall_clock_s": 1.234,
  # [|| true] so a missing field reaches the explicit check below instead of
  # tripping set -e inside the pipeline.
  grep -o '"total_wall_clock_s": *[0-9.]*' "$1" 2>/dev/null \
    | grep -o '[0-9.]*$' || true
}

baseline=$(extract "$baseline_file")
current=$(extract "$current_file")

if [ -z "$baseline" ] || [ -z "$current" ]; then
  echo "perf_guard: could not read total_wall_clock_s" >&2
  exit 2
fi

# ratio check in awk (POSIX sh has no float arithmetic)
awk -v b="$baseline" -v c="$current" 'BEGIN {
  ratio = c / b;
  printf "perf_guard: baseline %.3fs, current %.3fs (%.2fx)\n", b, c, ratio;
  if (ratio > 2.0) {
    printf "perf_guard: FAIL — quick bench regressed more than 2x\n";
    exit 1;
  }
  printf "perf_guard: OK\n";
}'
