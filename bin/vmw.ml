(* vmw — the warehouse view-maintenance workbench.

   Subcommands:
     vmw run SCRIPT        replay a script under a chosen algorithm, schedule,
                           batch size and timing mode (tables/JSON/trace out)
     vmw matrix SCRIPT     every algorithm x every schedule, verdict matrix
     vmw demo              the built-in anomaly demonstration (Example 2)
     vmw inspect SCRIPT    schemas, views, key coverage, initial contents
     vmw analyze SCRIPT    self-maintainability verdicts + rung pricing
     vmw query SCRIPT SQL  evaluate an ad-hoc SELECT on the initial state
     vmw generate DIR      emit an Example-6 workload as CSVs + script
     vmw algorithms        list the registered maintenance algorithms
     vmw model             print the analytic cost model for given params *)

module R = Relational

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Shared argument parsing                                             *)
(* ------------------------------------------------------------------ *)

let schedule_of_string s =
  match String.lowercase_ascii s with
  | "best" -> Ok Core.Scheduler.Best_case
  | "worst" -> Ok Core.Scheduler.Worst_case
  | "round-robin" | "rr" -> Ok Core.Scheduler.Round_robin
  | other ->
    let explicit prefix =
      if String.length other > String.length prefix
         && String.sub other 0 (String.length prefix) = prefix
      then Some (String.sub other (String.length prefix)
                   (String.length other - String.length prefix))
      else None
    in
    (match explicit "random:" with
     | Some seed -> (
       match int_of_string_opt seed with
       | Some n -> Ok (Core.Scheduler.Random n)
       | None -> Error (`Msg "random:<seed> needs an integer seed"))
     | None -> (
       match explicit "explicit:" with
       | Some letters -> (
         try
           Ok
             (Core.Scheduler.Explicit
                (List.map
                   (function
                     | 'A' | 'a' -> Core.Scheduler.Apply_update
                     | 'S' | 's' -> Core.Scheduler.Source_receive
                     | 'W' | 'w' -> Core.Scheduler.Warehouse_receive
                     | c -> failwith (Printf.sprintf "bad action %C" c))
                   (List.init (String.length letters) (String.get letters))))
         with Failure m -> Error (`Msg m))
       | None ->
         Error
           (`Msg
              "schedule must be best | worst | round-robin | random:<seed> \
               | explicit:<AWS letters>")))

let schedule_conv =
  let parse = schedule_of_string in
  let print ppf (_ : Core.Scheduler.policy) =
    Format.pp_print_string ppf "<schedule>"
  in
  Cmdliner.Arg.conv (parse, print)

let algorithm_arg =
  Cmdliner.Arg.(
    value
    & opt (enum (List.map (fun e -> (e.Core.Registry.key, e.Core.Registry.key))
                   Core.Registry.entries))
        "eca"
    & info [ "a"; "algorithm" ] ~docv:"ALGO"
        ~doc:"Maintenance algorithm (see $(b,vmw algorithms)).")

let schedule_arg =
  Cmdliner.Arg.(
    value
    & opt schedule_conv Core.Scheduler.Best_case
    & info [ "s"; "schedule" ] ~docv:"SCHED"
        ~doc:
          "Event interleaving: $(b,best), $(b,worst), $(b,round-robin), \
           $(b,random:SEED) or $(b,explicit:LETTERS) (A=apply update, \
           W=warehouse receive, S=source answer).")

let rv_period_arg =
  Cmdliner.Arg.(
    value & opt int 1
    & info [ "rv-period" ] ~docv:"S"
        ~doc:"RV's recompute period: recompute the view every $(docv) updates.")

let scenario_arg =
  Cmdliner.Arg.(
    value & opt int 1
    & info [ "scenario" ] ~docv:"N"
        ~doc:
          "Physical scenario at the source: 1 = indexed + ample memory, 2 = \
           no indexes + 3-block nested loops.")

let trace_arg =
  Cmdliner.Arg.(
    value & flag & info [ "t"; "trace" ] ~doc:"Print the full event trace.")

let json_arg =
  Cmdliner.Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the whole run as JSON instead of text.")

let load_arg =
  Cmdliner.Arg.(
    value
    & opt_all (pair ~sep:'=' string file) []
    & info [ "load" ] ~docv:"REL=FILE.csv"
        ~doc:
          "Load a base relation's initial contents from a CSV file (typed \
           by the TABLE declaration); repeatable. Replaces any initial \
           INSERTs into that relation.")

let trace_out_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE.jsonl"
        ~doc:
          "Write the observability span/gauge stream (DESIGN.md \u{00a7}4f) \
           to $(docv) as JSON Lines. Implies collecting spans; without this \
           flag the run is entirely uninstrumented.")

let batch_arg =
  Cmdliner.Arg.(
    value & opt int 1
    & info [ "batch" ] ~docv:"N"
        ~doc:"Batch size: the source executes $(docv) updates per atomic \
              event and sends one notification (Section 7 extension).")

let view_algo_arg =
  Cmdliner.Arg.(
    value
    & opt_all (pair ~sep:'=' string string) []
    & info [ "view-algo" ] ~docv:"VIEW=ALGO"
        ~doc:
          "Per-view algorithm rung for multi-view scripts: maintain $(b,VIEW) \
           with $(b,ALGO) (a registered algorithm, $(b,auto) to pick the \
           cheapest applicable rung — ECAK where every key is projected, \
           ECA-SM where the self-maintainability analysis makes every class \
           local, ECAL where a delete class is local, ECA otherwise — or \
           $(b,auto-cost) to price the eligible rungs with the Appendix-D \
           closed forms over the script's own update stream and take the \
           cheapest by messages, transfer, then storage). Repeatable; views \
           without an override use $(b,--algorithm).")

let share_arg =
  Cmdliner.Arg.(
    value & flag
    & info [ "share-deltas" ]
        ~doc:
          "Shared-delta (MQO) maintenance: structurally equal delta queries \
           raised by distinct views within one warehouse event are shipped \
           once and the single answer fanned out to every subscriber. The \
           sharing counters appear in the metrics block.")

let timing_arg =
  let timing_conv =
    Cmdliner.Arg.conv
      ( (fun s ->
          match String.lowercase_ascii s with
          | "immediate" -> Ok Core.Timing.Immediate
          | "deferred" -> Ok Core.Timing.Deferred
          | other -> (
            match int_of_string_opt other with
            | Some n when n > 0 -> Ok (Core.Timing.Periodic n)
            | _ ->
              Error
                (`Msg "timing must be immediate | deferred | <period int>"))),
        fun ppf (_ : Core.Timing.mode) -> Format.pp_print_string ppf "<timing>" )
  in
  Cmdliner.Arg.(
    value
    & opt timing_conv Core.Timing.Immediate
    & info [ "timing" ] ~docv:"MODE"
        ~doc:
          "Maintenance timing (Section 2): $(b,immediate), $(b,deferred), \
           or an integer period for periodic refresh.")

(* ------------------------------------------------------------------ *)
(* vmw run                                                             *)
(* ------------------------------------------------------------------ *)

let catalog_for scenario =
  if scenario = 2 then Workload.Scenarios.catalog_scenario2 ()
  else Workload.Scenarios.catalog_scenario1 ()

(* --view-algo VIEW=auto-cost: measure the script's own update stream
   through the self-maintainability analysis (how many deletes are
   key-answerable, how many updates self-maintenance still compensates,
   how big the auxiliary views actually are) and let the cost-model
   chooser price the structurally eligible rungs. SC is deliberately not
   offered — full base copies are a policy decision, not a cost one. *)
let cost_measures (script : R.Script.t) (v : R.Viewdef.t) =
  let analysis = R.Selfmaint.analyze v in
  let window =
    List.filter
      (fun (u : R.Update.t) -> R.Viewdef.mentions v u.R.Update.rel)
      script.R.Script.updates
  in
  let class_of (u : R.Update.t) =
    R.Selfmaint.find_class analysis ~rel:u.R.Update.rel ~kind:u.R.Update.kind
  in
  let local_delete (u : R.Update.t) =
    u.R.Update.kind = R.Update.Delete
    &&
    match class_of u with
    | Some { R.Selfmaint.cls_verdict = R.Selfmaint.Self _; _ } -> true
    | _ -> false
  in
  let falls_back u =
    match class_of u with
    | Some { R.Selfmaint.cls_plan = R.Selfmaint.Use_fallback _; _ } -> true
    | _ -> false
  in
  let db = R.Script.initial_db script in
  let aux_bytes =
    if analysis.R.Selfmaint.fully_local then
      snd (R.Selfmaint.storage analysis (R.Selfmaint.seed_aux_db analysis db))
    else 0
  in
  let base_bytes =
    List.fold_left
      (fun acc rel -> acc + R.Bag.byte_size (R.Db.contents db rel))
      0 (R.Viewdef.relation_names v)
  in
  {
    Costmodel.Chooser.updates = List.length window;
    local_deletes = List.length (List.filter local_delete window);
    sm_fallback = List.length (List.filter falls_back window);
    aux_bytes;
    base_bytes;
  }

let eligible_rungs (v : R.Viewdef.t) =
  [ "eca" ]
  @ (if Core.Eca_key.applicable v then [ "eca-key" ] else [])
  @ (if Core.Eca_sm.applicable v then [ "eca-sm" ] else [])
  @ if Core.Eca_local.local_capable v then [ "eca-local" ] else []

let cost_rung script v =
  match Costmodel.Chooser.choose (cost_measures script v) (eligible_rungs v) with
  | Some c -> c.Costmodel.Chooser.algo
  | None -> "eca"

let run_script path algorithm schedule rv_period scenario trace json loads
    batch_size timing trace_out view_algos share_deltas =
  match
    let text = read_file path in
    let script = R.Parser.parse_script text in
    if script.R.Script.views = [] then failwith "the script defines no view";
    (* Per-view rungs go through the Catalog: every --view-algo must name
       a script view, overrides pick their rung (or [auto]), the rest run
       the global --algorithm. *)
    List.iter
      (fun (name, _) ->
        if
          not
            (List.exists
               (fun (v : R.Viewdef.t) -> String.equal v.R.Viewdef.name name)
               script.R.Script.views)
        then failwith (Printf.sprintf "--view-algo: unknown view %s" name))
      view_algos;
    let entries =
      if view_algos = [] then None
      else
        Some
          (List.map
             (fun (v : R.Viewdef.t) ->
               match List.assoc_opt v.R.Viewdef.name view_algos with
               | Some "auto" -> Core.Catalog.entry v
               | Some "auto-cost" ->
                 Core.Catalog.entry ~algo:(cost_rung script v) v
               | Some a -> Core.Catalog.entry ~algo:a v
               | None -> Core.Catalog.entry ~algo:algorithm v)
             script.R.Script.views)
    in
    let base_creator =
      match entries with
      | None -> Core.Registry.creator_exn algorithm
      | Some entries ->
        if not json then
          List.iter
            (fun (name, algo) -> Format.printf "view %s runs %s@." name algo)
            (Core.Catalog.algorithms entries);
        Core.Catalog.creator entries
    in
    let db = R.Script.initial_db script in
    (* CSV loads override a relation's initial contents. *)
    let db =
      List.fold_left
        (fun db (rel, csv_path) ->
          if not (R.Db.mem db rel) then
            failwith (Printf.sprintf "--load: unknown relation %s" rel);
          let schema = R.Db.schema db rel in
          R.Db.set_contents db rel (R.Csv.parse schema (read_file csv_path)))
        db loads
    in
    Core.Runner.run_defs
      ~catalog:(catalog_for scenario)
      ~schedule ~rv_period ~batch_size ?trace_out
      ~share_deltas ~evolution:script.R.Script.ddls
      ~creator:(Core.Timing.creator timing base_creator)
      ~views:script.R.Script.views ~db ~updates:script.R.Script.updates ()
  with
  | exception Sys_error m -> Error m
  | exception R.Parser.Parse_error m -> Error ("parse error: " ^ m)
  | exception R.Schema.Schema_error m -> Error ("schema error: " ^ m)
  | exception R.View.View_error m -> Error ("view error: " ^ m)
  | exception R.Db.Db_error m -> Error ("database error: " ^ m)
  | exception R.Csv.Csv_error m -> Error ("csv error: " ^ m)
  | exception Failure m -> Error m
  | exception Core.Eca_key.Not_applicable m -> Error m
  | exception Core.Sc.Not_applicable m -> Error m
  | exception Core.Catalog.Catalog_error m -> Error m
  | exception Core.Runner.Run_error m -> Error ("run error: " ^ m)
  | result ->
    if json then print_endline (Core.Json_export.result result)
    else begin
      if trace then
        Format.printf "%a@." Core.Trace.pp result.Core.Runner.trace;
      let script_views =
        (* re-parse to recover the view definitions for rendering *)
        (R.Parser.parse_script (read_file path)).R.Script.views
      in
      List.iter
        (fun (name, mv) ->
          let truth = List.assoc name result.Core.Runner.final_source_views in
          let report = List.assoc name result.Core.Runner.reports in
          Format.printf "view %s:@." name;
          (match
             List.find_opt
               (fun (v : R.Viewdef.t) -> String.equal v.R.Viewdef.name name)
               script_views
           with
           | Some v ->
             print_string
               (R.Render.table ~columns:(R.Viewdef.output_attr_names v) mv)
           | None -> Format.printf "  %a@." R.Bag.pp mv);
          if not (R.Bag.equal truth mv) then
            Format.printf "  source truth   = %a@." R.Bag.pp truth;
          Format.printf "  verdict        = %a@." Core.Consistency.pp report;
          Format.printf "  staleness      = %a@." Core.Staleness.pp
            (Core.Staleness.of_trace result.Core.Runner.trace name))
        result.Core.Runner.final_mvs;
      (match result.Core.Runner.negative_installs with
       | [] -> ()
       | l ->
         Format.printf
           "!! %d view state(s) carried negative tuple counts (over-deletion \
            anomaly)@."
           (List.length l));
      Format.printf "metrics: %a@." Core.Metrics.pp result.Core.Runner.metrics
    end;
    Ok ()

(* ------------------------------------------------------------------ *)
(* vmw demo                                                            *)
(* ------------------------------------------------------------------ *)

let demo_script =
  {|
TABLE r1 (W INT, X INT);
TABLE r2 (X INT, Y INT);
VIEW v AS SELECT r1.W FROM r1, r2 WHERE r1.X = r2.X;
INSERT INTO r1 VALUES (1, 2);
UPDATES;
INSERT INTO r2 VALUES (2, 3);
INSERT INTO r1 VALUES (4, 2);
|}

let run_demo () =
  let script = R.Parser.parse_script demo_script in
  let db = R.Script.initial_db script in
  let schedule =
    Core.Scheduler.Explicit
      Core.Scheduler.
        [
          Apply_update; Warehouse_receive; Apply_update; Warehouse_receive;
          Source_receive; Warehouse_receive; Source_receive; Warehouse_receive;
        ]
  in
  Format.printf
    "Example 2 of the paper: two inserts race the warehouse's first query.@.@.";
  List.iter
    (fun algorithm ->
      let result =
        Core.Runner.run_defs ~schedule
          ~creator:(Core.Registry.creator_exn algorithm)
          ~views:script.R.Script.views ~db ~updates:script.R.Script.updates ()
      in
      let report = List.assoc "v" result.Core.Runner.reports in
      Format.printf "%-6s: MV = %a (%s)@." algorithm R.Bag.pp
        (List.assoc "v" result.Core.Runner.final_mvs)
        (Core.Consistency.strongest_label report))
    [ "basic"; "eca" ];
  Ok ()

(* ------------------------------------------------------------------ *)
(* vmw inspect                                                         *)
(* ------------------------------------------------------------------ *)

let inspect_script path =
  match
    let script = R.Parser.parse_script (read_file path) in
    let db = R.Script.initial_db script in
    Format.printf "tables:@.";
    List.iter
      (fun (s : R.Schema.t) ->
        Format.printf "  %a  (%d initial tuples)@." R.Schema.pp s
          (R.Bag.net_cardinality (R.Db.contents db s.R.Schema.name)))
      script.R.Script.tables;
    Format.printf "@.views:@.";
    List.iter
      (fun (v : R.Viewdef.t) ->
        Format.printf "  %a@." R.Viewdef.pp v;
        Format.printf "    key coverage (ECAK eligible): %b@."
          (match R.Viewdef.as_simple v with
           | Some sv -> R.View.covers_all_keys sv
           | None -> false);
        Format.printf "    initial contents:@.";
        print_string
          (R.Render.table ~columns:(R.Viewdef.output_attr_names v)
             (R.Viewdef.eval db v)))
      script.R.Script.views;
    Format.printf "@.update stream: %d updates (%d inserts, %d deletes)@."
      (List.length script.R.Script.updates)
      (List.length
         (List.filter
            (fun (u : R.Update.t) -> u.R.Update.kind = R.Update.Insert)
            script.R.Script.updates))
      (List.length
         (List.filter
            (fun (u : R.Update.t) -> u.R.Update.kind = R.Update.Delete)
            script.R.Script.updates));
    if script.R.Script.ddls <> [] then
      Format.printf "schema changes: %d (ALTER TABLE, woven into the stream)@."
        (List.length script.R.Script.ddls)
  with
  | exception Sys_error m -> Error m
  | exception R.Parser.Parse_error m -> Error ("parse error: " ^ m)
  | exception R.Schema.Schema_error m -> Error ("schema error: " ^ m)
  | exception R.View.View_error m -> Error ("view error: " ^ m)
  | exception R.Db.Db_error m -> Error ("database error: " ^ m)
  | () -> Ok ()

(* ------------------------------------------------------------------ *)
(* vmw analyze                                                         *)
(* ------------------------------------------------------------------ *)

let analyze_script path =
  match
    let script = R.Parser.parse_script (read_file path) in
    if script.R.Script.views = [] then failwith "the script defines no view";
    List.iteri
      (fun i (v : R.Viewdef.t) ->
        if i > 0 then Format.printf "@.";
        let analysis = R.Selfmaint.analyze v in
        Format.printf "%a" R.Selfmaint.pp_report analysis;
        let eligible = eligible_rungs v in
        let candidates =
          Costmodel.Chooser.score (cost_measures script v) eligible
        in
        Format.printf "  eligible rungs over this script's %d updates:@."
          (List.length
             (List.filter
                (fun (u : R.Update.t) -> R.Viewdef.mentions v u.R.Update.rel)
                script.R.Script.updates));
        List.iter
          (fun c -> Format.printf "    %a@." Costmodel.Chooser.pp_candidate c)
          candidates;
        Format.printf "  auto-cost picks: %s@." (cost_rung script v))
      script.R.Script.views
  with
  | exception Sys_error m -> Error m
  | exception Failure m -> Error m
  | exception R.Parser.Parse_error m -> Error ("parse error: " ^ m)
  | exception R.Schema.Schema_error m -> Error ("schema error: " ^ m)
  | exception R.View.View_error m -> Error ("view error: " ^ m)
  | exception R.Db.Db_error m -> Error ("database error: " ^ m)
  | () -> Ok ()

(* ------------------------------------------------------------------ *)
(* vmw generate                                                        *)
(* ------------------------------------------------------------------ *)

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let generate_workload out_dir c j k seed =
  match
    if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
    let spec =
      Workload.Spec.make ~c ~j ~k_updates:k ~seed ()
    in
    let { Workload.Scenarios.db; view = _; updates } =
      Workload.Scenarios.example6 spec
    in
    List.iter
      (fun (s : R.Schema.t) ->
        write_file
          (Filename.concat out_dir (s.R.Schema.name ^ ".csv"))
          (R.Csv.to_string s (R.Db.contents db s.R.Schema.name)))
      Workload.Generator.chain_schemas;
    let b = Buffer.create 1024 in
    Buffer.add_string b
      "-- generated Example-6 workload; load the CSVs with --load\n";
    Buffer.add_string b "TABLE r1 (W INT, X INT);\n";
    Buffer.add_string b "TABLE r2 (X INT, Y INT);\n";
    Buffer.add_string b "TABLE r3 (Y INT, Z INT);\n";
    Buffer.add_string b
      "VIEW v AS SELECT r1.W, r3.Z FROM r1, r2, r3 WHERE r1.X = r2.X AND \
       r2.Y = r3.Y AND r1.W > r3.Z;\n";
    Buffer.add_string b "UPDATES;\n";
    List.iter
      (fun (u : R.Update.t) ->
        let values =
          String.concat ", "
            (List.map R.Value.to_string (R.Tuple.to_list u.R.Update.tuple))
        in
        match u.R.Update.kind with
        | R.Update.Insert ->
          Buffer.add_string b
            (Printf.sprintf "INSERT INTO %s VALUES (%s);\n" u.R.Update.rel values)
        | R.Update.Delete ->
          Buffer.add_string b
            (Printf.sprintf "DELETE FROM %s VALUES (%s);\n" u.R.Update.rel values))
      updates;
    write_file (Filename.concat out_dir "workload.sql") (Buffer.contents b);
    Format.printf
      "wrote %s/{r1,r2,r3}.csv and %s/workload.sql@.run it with:@.  vmw run \
       %s/workload.sql --load r1=%s/r1.csv --load r2=%s/r2.csv --load \
       r3=%s/r3.csv@."
      out_dir out_dir out_dir out_dir out_dir out_dir
  with
  | exception Sys_error m -> Error m
  | exception Invalid_argument m -> Error m
  | () -> Ok ()

(* ------------------------------------------------------------------ *)
(* vmw query                                                           *)
(* ------------------------------------------------------------------ *)

let query_script path select_text loads =
  match
    let script = R.Parser.parse_script (read_file path) in
    let db = R.Script.initial_db script in
    let db =
      List.fold_left
        (fun db (rel, csv_path) ->
          if not (R.Db.mem db rel) then
            failwith (Printf.sprintf "--load: unknown relation %s" rel);
          let schema = R.Db.schema db rel in
          R.Db.set_contents db rel (R.Csv.parse schema (read_file csv_path)))
        db loads
    in
    let view = R.Parser.parse_select ~tables:script.R.Script.tables select_text in
    print_string (R.Render.view_table view (R.Eval.view db view))
  with
  | exception Sys_error m -> Error m
  | exception R.Parser.Parse_error m -> Error ("parse error: " ^ m)
  | exception R.Schema.Schema_error m -> Error ("schema error: " ^ m)
  | exception R.View.View_error m -> Error ("view error: " ^ m)
  | exception R.Db.Db_error m -> Error ("database error: " ^ m)
  | exception R.Csv.Csv_error m -> Error ("csv error: " ^ m)
  | exception Failure m -> Error m
  | () -> Ok ()

(* ------------------------------------------------------------------ *)
(* vmw algorithms / vmw model                                          *)
(* ------------------------------------------------------------------ *)

let list_algorithms () =
  List.iter
    (fun e ->
      Format.printf "%-10s %s@." e.Core.Registry.key e.Core.Registry.description)
    Core.Registry.entries;
  Ok ()

let print_model c j k_per_block k =
  match Costmodel.Params.make ~c ~j ~k_per_block () with
  | exception Invalid_argument m -> Error m
  | params ->
    Format.printf "%a@.@." Costmodel.Params.rows params;
    Format.printf "with k = %d updates:@." k;
    Format.printf "  B  RV once   %10.0f@." (Costmodel.Transfer.rv_best_k params ~k);
    Format.printf "  B  RV every  %10.0f@." (Costmodel.Transfer.rv_worst_k params ~k);
    Format.printf "  B  ECA best  %10.0f@." (Costmodel.Transfer.eca_best_k params ~k);
    Format.printf "  B  ECA worst %10.0f@." (Costmodel.Transfer.eca_worst_k params ~k);
    List.iter
      (fun (label, s) ->
        Format.printf "  IO %s RV once   %10.0f@." label
          (Costmodel.Io_model.rv_best_k s params ~k);
        Format.printf "  IO %s ECA best  %10.0f@." label
          (Costmodel.Io_model.eca_best_k s params ~k);
        Format.printf "  IO %s ECA worst %10.0f@." label
          (Costmodel.Io_model.eca_worst_k s params ~k))
      [ ("S1", Costmodel.Io_model.Scenario1); ("S2", Costmodel.Io_model.Scenario2) ];
    Ok ()

(* ------------------------------------------------------------------ *)
(* Command wiring                                                      *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let exits_of = function
  | Ok () -> 0
  | Error m ->
    Format.eprintf "vmw: %s@." m;
    1

let run_cmd =
  let script_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT")
  in
  let doc = "Replay a warehouse script and report the view and its verdict" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const (fun p a s rv sc t j l b tm to_ va sh ->
          exits_of (run_script p a s rv sc t j l b tm to_ va sh))
      $ script_arg $ algorithm_arg $ schedule_arg $ rv_period_arg
      $ scenario_arg $ trace_arg $ json_arg $ load_arg $ batch_arg
      $ timing_arg $ trace_out_arg $ view_algo_arg $ share_arg)

let demo_cmd =
  let doc = "Show the view-maintenance anomaly and ECA's fix" in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const (fun () -> exits_of (run_demo ())) $ const ())

let algorithms_cmd =
  let doc = "List the registered maintenance algorithms" in
  Cmd.v (Cmd.info "algorithms" ~doc)
    Term.(const (fun () -> exits_of (list_algorithms ())) $ const ())

let model_cmd =
  let c_arg = Arg.(value & opt int 100 & info [ "c" ] ~docv:"C") in
  let j_arg = Arg.(value & opt float 4.0 & info [ "j" ] ~docv:"J") in
  let kb_arg = Arg.(value & opt int 20 & info [ "k-per-block" ] ~docv:"K") in
  let k_arg = Arg.(value & opt int 30 & info [ "k" ] ~docv:"UPDATES") in
  let doc = "Print the Appendix-D analytic cost model for given parameters" in
  Cmd.v (Cmd.info "model" ~doc)
    Term.(
      const (fun c j kb k -> exits_of (print_model c j kb k))
      $ c_arg $ j_arg $ kb_arg $ k_arg)

let inspect_cmd =
  let script_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT")
  in
  let doc = "Show a script's schemas, views, key coverage and initial state" in
  Cmd.v (Cmd.info "inspect" ~doc)
    Term.(const (fun p -> exits_of (inspect_script p)) $ script_arg)

let analyze_cmd =
  let script_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT")
  in
  let doc =
    "Classify each view's update classes for self-maintainability and \
     price the eligible maintenance rungs over the script's update stream"
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const (fun p -> exits_of (analyze_script p)) $ script_arg)

let generate_cmd =
  let out_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OUT_DIR")
  in
  let c_arg = Arg.(value & opt int 100 & info [ "c" ] ~docv:"C") in
  let j_arg = Arg.(value & opt int 4 & info [ "j" ] ~docv:"J") in
  let k_arg = Arg.(value & opt int 30 & info [ "k" ] ~docv:"UPDATES") in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED") in
  let doc = "Generate an Example-6 workload as CSV files plus a script" in
  Cmd.v (Cmd.info "generate" ~doc)
    Term.(
      const (fun o c j k s -> exits_of (generate_workload o c j k s))
      $ out_arg $ c_arg $ j_arg $ k_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* vmw matrix                                                          *)
(* ------------------------------------------------------------------ *)

let consistency_matrix path =
  match
    let script = R.Parser.parse_script (read_file path) in
    if script.R.Script.views = [] then failwith "the script defines no view";
    let db = R.Script.initial_db script in
    let schedules =
      [
        ("best", Core.Scheduler.Best_case);
        ("worst", Core.Scheduler.Worst_case);
        ("random", Core.Scheduler.Random 7);
      ]
    in
    Format.printf "%-10s" "";
    List.iter (fun (label, _) -> Format.printf " %-28s" label) schedules;
    Format.printf "@.";
    List.iter
      (fun entry ->
        let algorithm = entry.Core.Registry.key in
        if String.equal algorithm "fetch-join" then ()
        else begin
          Format.printf "%-10s" algorithm;
          List.iter
            (fun (_, schedule) ->
              let cell =
                match
                  Core.Runner.run_defs ~schedule
                    ~evolution:script.R.Script.ddls
                    ~creator:(Core.Registry.creator_exn algorithm)
                    ~views:script.R.Script.views ~db
                    ~updates:script.R.Script.updates ()
                with
                | result ->
                  let worst =
                    List.fold_left
                      (fun acc (_, report) ->
                        let label = Core.Consistency.strongest_label report in
                        match acc with
                        | None -> Some label
                        | Some prev ->
                          if String.equal prev label then acc
                          else Some "mixed"
                      )
                      None result.Core.Runner.reports
                  in
                  Option.value worst ~default:"(no views)"
                | exception Core.Eca_key.Not_applicable _ -> "n/a (keys)"
                | exception Core.Sc.Not_applicable _ -> "n/a"
              in
              Format.printf " %-28s" cell)
            schedules;
          Format.printf "@."
        end)
      Core.Registry.entries
  with
  | exception Sys_error m -> Error m
  | exception R.Parser.Parse_error m -> Error ("parse error: " ^ m)
  | exception R.Schema.Schema_error m -> Error ("schema error: " ^ m)
  | exception R.View.View_error m -> Error ("view error: " ^ m)
  | exception R.Db.Db_error m -> Error ("database error: " ^ m)
  | exception Failure m -> Error m
  | exception Core.Runner.Run_error m -> Error ("run error: " ^ m)
  | () -> Ok ()

let matrix_cmd =
  let script_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT")
  in
  let doc =
    "Run every algorithm under every schedule and print the verdict matrix"
  in
  Cmd.v (Cmd.info "matrix" ~doc)
    Term.(const (fun p -> exits_of (consistency_matrix p)) $ script_arg)

let query_cmd =
  let script_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT")
  in
  let select_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"SELECT")
  in
  let doc =
    "Evaluate an ad-hoc SELECT against a script's initial source state"
  in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(
      const (fun p q l -> exits_of (query_script p q l))
      $ script_arg $ select_arg $ load_arg)

let () =
  let doc = "view maintenance in a warehousing environment (SIGMOD '95)" in
  let info = Cmd.info "vmw" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ run_cmd; demo_cmd; algorithms_cmd; model_cmd; inspect_cmd;
            analyze_cmd; generate_cmd; query_cmd; matrix_cmd ]))
