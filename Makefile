# Convenience targets; `dune build` / `dune runtest` remain the source of
# truth (ROADMAP.md tier 1).

.PHONY: all build test bench smoke clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full benchmark suite including the Bechamel wall-clock section.
bench:
	dune build bench/main.exe
	./_build/default/bench/main.exe

# One-stop pre-commit gate: build everything, run the test suite (plus
# the fault-injection/reliability suites explicitly, so a filtered or
# cached runtest can never silently skip them), run the quick benchmark,
# and fail if its wall clock regressed more than 2x against the
# committed BENCH_results.json baseline. The baseline is copied aside
# first because the bench overwrites it in place.
smoke:
	dune build @all
	dune runtest
	dune exec test/main.exe -- test faults
	dune exec test/main.exe -- test reliable
	dune build bench/main.exe
	@if [ -f BENCH_results.json ]; then \
	  cp BENCH_results.json /tmp/BENCH_baseline.json; \
	else \
	  echo "smoke: no committed BENCH_results.json baseline; skipping guard"; \
	fi
	./_build/default/bench/main.exe quick > /dev/null
	@if [ -f /tmp/BENCH_baseline.json ]; then \
	  sh scripts/perf_guard.sh /tmp/BENCH_baseline.json BENCH_results.json; \
	  rm -f /tmp/BENCH_baseline.json; \
	fi

clean:
	dune clean
