# Convenience targets; `dune build` / `dune runtest` remain the source of
# truth (ROADMAP.md tier 1).

.PHONY: all build test bench bench-par bench-throughput smoke clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full benchmark suite including the Bechamel wall-clock section.
# Sequential unless PAR is set in the environment.
bench:
	dune build bench/main.exe
	./_build/default/bench/main.exe

# Full benchmark fanned out over the domain pool: every core unless PAR
# overrides it (PAR=1 is the sequential path; the emitted runs array is
# identical either way, modulo per-run wall clocks).
bench-par:
	dune build bench/main.exe
	./_build/default/bench/main.exe $${PAR:+--par=$$PAR}

# Just the sustained-throughput section (compiled vs interpreted delta
# programs, schema v6), written to BENCH_throughput.json so the
# committed BENCH_results.json is not clobbered by a partial run.
bench-throughput:
	dune build bench/main.exe
	./_build/default/bench/main.exe throughput

# One-stop pre-commit gate: build everything, run the test suite (plus
# the fault-injection/reliability suites, the golden-trace equivalence
# check pinning Runner/Federation to the engine byte-for-byte, and the
# engine, selfmaint and evolution suites, all explicitly, so a filtered
# or cached runtest can never silently skip them), check that the
# parallel
# bench is deterministic (PAR=1 and PAR=4 emit identical runs arrays),
# run the quick benchmark, and fail if its summed per-run wall clock
# regressed more than 2x against the committed BENCH_results.json
# baseline. The baseline is copied aside first because the bench
# overwrites it in place.
smoke:
	dune build @all
	dune runtest
	dune exec test/main.exe -- test faults
	dune exec test/main.exe -- test reliable
	dune exec test/main.exe -- test observe
	dune exec test/main.exe -- test golden
	dune exec test/main.exe -- test engine
	dune exec test/main.exe -- test selfmaint
	dune exec test/main.exe -- test evolution
	dune build bench/main.exe
	sh scripts/check_determinism.sh ./_build/default/bench/main.exe 4
	@if [ -f BENCH_results.json ]; then \
	  cp BENCH_results.json /tmp/BENCH_baseline.json; \
	else \
	  echo "smoke: no committed BENCH_results.json baseline; skipping guard"; \
	fi
	./_build/default/bench/main.exe quick > /dev/null
	@if [ -f /tmp/BENCH_baseline.json ]; then \
	  sh scripts/perf_guard.sh /tmp/BENCH_baseline.json BENCH_results.json; \
	  rm -f /tmp/BENCH_baseline.json; \
	fi

clean:
	dune clean
