-- A compound (UNION/EXCEPT) view over a transactions feed.
-- Try:  vmw run examples/scripts/union_watchlist.sql -a eca -s worst
--       vmw matrix examples/scripts/union_watchlist.sql
TABLE transfers (tid INT KEY, acct INT, amount INT);
TABLE flagged (acct INT);
TABLE cleared (tid INT);

VIEW watchlist AS
  SELECT tid, transfers.acct, amount FROM transfers WHERE amount > 900
  UNION
  SELECT tid, transfers.acct, amount FROM transfers, flagged
    WHERE transfers.acct = flagged.acct
  EXCEPT
  SELECT transfers.tid, acct, amount FROM transfers, cleared
    WHERE transfers.tid = cleared.tid AND amount > 900;

INSERT INTO transfers VALUES (1, 10, 950);
INSERT INTO transfers VALUES (2, 11, 120);
INSERT INTO transfers VALUES (3, 12, 400);
INSERT INTO flagged VALUES (12);

UPDATES;
INSERT INTO transfers VALUES (4, 12, 80);
INSERT INTO flagged VALUES (11);
INSERT INTO cleared VALUES (1);
INSERT INTO transfers VALUES (5, 13, 9000);
DELETE FROM flagged VALUES (12);
