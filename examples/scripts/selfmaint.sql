-- A self-maintainable join (DESIGN.md §4j).
--
-- The foreign key orders.cid REFERENCES customers(cid) lets the
-- warehouse derive an inserted order's join partner from the inserted
-- tuple itself, and the KEY on orders.oid answers deletes by key — so
-- every update class is warehouse-local and ECA-SM sends no
-- compensating queries at all.
--
-- Try:  vmw analyze examples/scripts/selfmaint.sql
--       vmw run examples/scripts/selfmaint.sql --view-algo order_amounts=auto-cost -s worst
TABLE customers (cid INT KEY, region INT);
TABLE orders (oid INT KEY, cid INT REFERENCES customers(cid), amount INT, note INT);

VIEW order_amounts AS
  SELECT orders.oid, orders.amount
  FROM orders, customers
  WHERE orders.cid = customers.cid;

INSERT INTO customers VALUES (1, 10);
INSERT INTO customers VALUES (2, 20);
INSERT INTO orders VALUES (100, 1, 250, 0);
INSERT INTO orders VALUES (101, 2, 120, 0);

UPDATES;
INSERT INTO orders VALUES (102, 1, 75, 0);
INSERT INTO customers VALUES (3, 10);
INSERT INTO orders VALUES (103, 3, 410, 0);
DELETE FROM orders VALUES (101, 2, 120, 0);
DELETE FROM orders VALUES (100, 1, 250, 0);
