-- The keyed retail scenario (ECAK-eligible view).
-- Try:  vmw run examples/scripts/retail.sql -a eca-key -s worst --trace
TABLE customers (cid INT KEY, region TEXT);
TABLE orders (oid INT KEY, cid INT, amount INT);

VIEW west_orders AS
  SELECT orders.oid, customers.cid, orders.amount
  FROM orders, customers
  WHERE orders.cid = customers.cid AND customers.region = 'west';

INSERT INTO customers VALUES (1, 'west');
INSERT INTO customers VALUES (2, 'east');
INSERT INTO customers VALUES (3, 'west');
INSERT INTO orders VALUES (100, 1, 250);
INSERT INTO orders VALUES (101, 2, 120);
INSERT INTO orders VALUES (102, 3, 999);

UPDATES;
INSERT INTO orders VALUES (103, 1, 75);
DELETE FROM orders VALUES (102, 3, 999);
INSERT INTO customers VALUES (4, 'west');
INSERT INTO orders VALUES (104, 4, 410);
DELETE FROM customers VALUES (2, 'east');
DELETE FROM orders VALUES (101, 2, 120);
